"""Datacenter fleet topology and the global load balancer.

The multi-rack layer of the ROADMAP's "millions of users" north star: a
:class:`FleetTopology` of N racks — each its own
:class:`~repro.cluster.simulation.RackSimulation` with per-rack fleet
size, queue bound, scheduling policy, fault schedule, retry policy, and
controller — fed by one fleet-level
:class:`~repro.cluster.trace.RequestTrace` that a deterministic
:class:`GlobalLoadBalancer` splits into per-rack shards *before* any
fan-out.  Because the split and the per-rack seeds (splitmix64-derived
from the fleet seed and the rack index) are pure functions of the trace
and the topology, the per-rack simulations are independent of how many
worker processes eventually run them — the property the sharded runner
in :mod:`repro.cluster.fleet_engine` exploits and oracle-checks.

Load-balancer policies (all deterministic, all worker-count invariant):

- ``round_robin`` — request ``k`` goes to rack ``k % N``.
- ``weighted`` — smooth weighted round-robin by rack capacity weight:
  each rack emits virtual tokens at rate ``weight``, the merged token
  stream (stable-sorted, rack index breaking ties) owns the requests in
  order.  Rack shares converge to ``weight / total_weight`` with the
  interleaving spread evenly through time instead of in contiguous
  blocks.
- ``hash_affinity`` — all requests of one application land on one rack,
  chosen by a splitmix64 hash of the application name (stable across
  processes and Python hash randomization) mixed with the balancer
  seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.control import ControlPlane
from repro.cluster.faults import FaultSchedule, RetryPolicy, _splitmix64
from repro.cluster.sweep import POLICY_NAMES
from repro.cluster.trace import RequestTrace
from repro.errors import ConfigurationError

LB_POLICIES = ("round_robin", "weighted", "hash_affinity")

_MASK63 = (1 << 63) - 1


def derive_rack_seed(fleet_seed: int, rack_index: int) -> int:
    """Deterministic per-rack RNG seed, independent of worker count.

    A splitmix64 chain over ``(fleet_seed, rack_index)``: adjacent rack
    indices and adjacent fleet seeds both scramble to unrelated streams,
    so racks never share service-sample sequences.  Masked to 63 bits
    (``numpy.random.default_rng`` wants a non-negative seed).
    """
    mixed = _splitmix64(_splitmix64(fleet_seed) ^ (rack_index + 1))
    return _splitmix64(mixed) & _MASK63


def _stable_app_hash(name: str) -> int:
    """A process-stable 64-bit hash of an application name.

    Built-in ``hash`` is randomized per interpreter (PYTHONHASHSEED), so
    affinity assignment uses blake2b instead — identical in every
    worker, every run, every machine.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class RackSpec:
    """One rack of the fleet: capacity, scheduling, and perturbations."""

    name: str
    platform: str
    max_instances: int = 200
    queue_depth: int = 10_000
    policy: str = "fcfs"
    weight: float = 1.0
    faults: Optional[FaultSchedule] = None
    retry: Optional[RetryPolicy] = None
    control: Optional[ControlPlane] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("rack needs a non-empty name")
        if self.max_instances <= 0:
            raise ConfigurationError(
                f"non-positive instances: {self.max_instances}"
            )
        if self.queue_depth <= 0:
            raise ConfigurationError(
                f"non-positive queue depth: {self.queue_depth}"
            )
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown scheduling policy {self.policy!r}; expected one "
                f"of {POLICY_NAMES}"
            )
        if not (np.isfinite(self.weight) and self.weight > 0):
            raise ConfigurationError(f"non-positive rack weight: {self.weight}")


@dataclass(frozen=True)
class FleetTopology:
    """An ordered set of racks plus the fleet master seed."""

    racks: Tuple[RackSpec, ...]
    seed: int = 2024

    def __post_init__(self) -> None:
        if not self.racks:
            raise ConfigurationError("fleet needs at least one rack")
        names = [rack.name for rack in self.racks]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate rack names in {names}")
        object.__setattr__(self, "racks", tuple(self.racks))

    def __len__(self) -> int:
        return len(self.racks)

    @property
    def weights(self) -> np.ndarray:
        return np.array([rack.weight for rack in self.racks], dtype=float)

    @property
    def total_instances(self) -> int:
        return sum(rack.max_instances for rack in self.racks)

    def rack_seed(self, index: int) -> int:
        """The derived RNG seed for the rack at ``index``."""
        if not 0 <= index < len(self.racks):
            raise ConfigurationError(
                f"rack index {index} out of range for {len(self.racks)} racks"
            )
        return derive_rack_seed(self.seed, index)

    @classmethod
    def uniform(
        cls,
        n_racks: int,
        platform: str,
        max_instances: int = 200,
        queue_depth: int = 10_000,
        policy: str = "fcfs",
        seed: int = 2024,
        faults: Optional[FaultSchedule] = None,
        retry: Optional[RetryPolicy] = None,
        control: Optional[ControlPlane] = None,
    ) -> "FleetTopology":
        """N identical racks named ``rack-000`` ... ``rack-{N-1:03d}``."""
        if n_racks <= 0:
            raise ConfigurationError(f"non-positive rack count: {n_racks}")
        racks = tuple(
            RackSpec(
                name=f"rack-{index:03d}",
                platform=platform,
                max_instances=max_instances,
                queue_depth=queue_depth,
                policy=policy,
                faults=faults,
                retry=retry,
                control=control,
            )
            for index in range(n_racks)
        )
        return cls(racks=racks, seed=seed)


class GlobalLoadBalancer:
    """Splits a fleet-level trace into per-rack shards, deterministically.

    The assignment is a pure function of ``(policy, seed, trace,
    topology)`` — computed once, before any process fan-out — so the
    resulting shards (and everything simulated on them) are independent
    of worker count by construction.
    """

    def __init__(self, policy: str = "round_robin", seed: int = 101) -> None:
        if policy not in LB_POLICIES:
            raise ConfigurationError(
                f"unknown load-balancer policy {policy!r}; expected one of "
                f"{LB_POLICIES}"
            )
        self.policy = policy
        self.seed = int(seed)

    # ------------------------------------------------------------ assign
    def assign(
        self, trace: RequestTrace, topology: FleetTopology
    ) -> np.ndarray:
        """Per-request rack indices (int64, aligned with the trace)."""
        n_racks = len(topology)
        n_requests = len(trace)
        if n_racks == 1:
            return np.zeros(n_requests, dtype=np.int64)
        if self.policy == "round_robin":
            return np.arange(n_requests, dtype=np.int64) % n_racks
        if self.policy == "weighted":
            return self._assign_weighted(n_requests, topology)
        return self._assign_affinity(trace, n_racks)

    def _assign_weighted(
        self, n_requests: int, topology: FleetTopology
    ) -> np.ndarray:
        """Smooth weighted round-robin via merged virtual-token streams."""
        if n_requests == 0:
            return np.zeros(0, dtype=np.int64)
        weights = topology.weights
        shares = weights / weights.sum()
        # Largest-remainder apportionment of the request count.
        quotas = shares * n_requests
        counts = np.floor(quotas).astype(np.int64)
        remainder = n_requests - int(counts.sum())
        if remainder:
            order = np.argsort(-(quotas - counts), kind="stable")
            counts[order[:remainder]] += 1
        # Rack r's j-th token fires at virtual time (j + 0.5) / weight_r;
        # the merged stream (rack index breaking exact ties) owns the
        # requests in order, interleaving racks proportionally.
        token_times = np.concatenate(
            [
                (np.arange(count, dtype=float) + 0.5) / weight
                for count, weight in zip(counts, weights)
            ]
        )
        token_racks = np.repeat(
            np.arange(len(weights), dtype=np.int64), counts
        )
        order = np.lexsort((token_racks, token_times))
        return token_racks[order]

    def _assign_affinity(
        self, trace: RequestTrace, n_racks: int
    ) -> np.ndarray:
        """Hash-affinity: every application sticks to one rack."""
        names = np.asarray(trace.app_names, dtype=object)
        if names.size == 0:
            return np.zeros(0, dtype=np.int64)
        unique, inverse = np.unique(names, return_inverse=True)
        rack_of_app = np.array(
            [
                _splitmix64(self.seed ^ _stable_app_hash(str(name)))
                % n_racks
                for name in unique
            ],
            dtype=np.int64,
        )
        return rack_of_app[inverse]

    # ------------------------------------------------------------- shard
    def shard(
        self, trace: RequestTrace, topology: FleetTopology
    ) -> List[RequestTrace]:
        """Per-rack sub-traces, in rack order.

        Shards keep the fleet clock: arrival times are unchanged (each
        shard of a time-ordered trace stays time-ordered, so every rack
        runs on a vectorized engine) and every shard spans the full
        fleet ``duration_seconds`` so per-rack sample grids line up.
        """
        assignment = self.assign(trace, topology)
        arrivals = trace.arrival_seconds
        names = np.asarray(trace.app_names, dtype=object)
        shards: List[RequestTrace] = []
        for index in range(len(topology)):
            mask = assignment == index
            shards.append(
                RequestTrace(
                    arrival_seconds=arrivals[mask],
                    app_names=tuple(names[mask]),
                    duration_seconds=trace.duration_seconds,
                )
            )
        return shards

    def shard_sizes(
        self, trace: RequestTrace, topology: FleetTopology
    ) -> np.ndarray:
        """Requests per rack under this policy (no shard materialised)."""
        assignment = self.assign(trace, topology)
        return np.bincount(assignment, minlength=len(topology)).astype(
            np.int64
        )
