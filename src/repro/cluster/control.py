"""Closed-loop control plane: reactive autoscaling + overload protection.

PR 6 made capacity an *open-loop* input — a pre-materialized
:class:`~repro.cluster.faults.FaultTimeline` plus a constant
``max_instances``.  This module closes the loop: a deterministic
controller observes the simulated rack at a fixed control interval
(busy instances, queue depth, head-of-line wait, windowed p99 latency,
failure counts) and actuates two families of knobs:

- **Reactive autoscaling** (:class:`AutoscalerPolicy`) — HPA-style
  target-utilization scaling (``desired = ceil(busy / target)``) or
  queue-depth scaling (``desired = busy + ceil(queue / per_instance)``),
  clamped to ``[min_instances, max_instances]``, with per-direction
  cooldowns.  Scale-ups take effect only after ``warmup_seconds`` — the
  container cold-start penalty, derivable from the
  :class:`~repro.serverless.coldstart.ColdStartModel` accounting via
  :func:`warmup_from_coldstart`.  Scale-downs are graceful: the live
  target drops immediately but in-flight work drains; nothing is
  killed.  The autoscaled capacity composes with a fault timeline as
  ``min(autoscaled, surviving)``.
- **Overload protection** (:class:`OverloadPolicy`) — a token-bucket
  admission limiter (refilled once per control tick), a CoDel-style
  shedder that drops the worst-key queued requests whenever
  head-of-line waiting exceeds a delay target, a brownout ladder that
  walks a criticality threshold down one class per overloaded tick
  (reusing :class:`~repro.cluster.policy_keys.PolicyKey` criticality
  vectors; the most critical class is never shed), and a per-app
  circuit breaker tripped by windowed failure fractions.  Every shed is
  a *terminal* drop with the dedicated ``shed`` reason
  (:data:`~repro.cluster.faults.REASON_SHED`): admission control tells
  clients to back off, so sheds are never retried.

Determinism is the design center, matching ``faults.py``: the
controller state machine (:class:`ControllerState`) is shared — not
re-implemented — by the event-driven oracle and the vectorized engine
in :mod:`repro.cluster.control_engine`, consumes no RNG, and makes
every decision from quantities both engines observe identically at
control ticks.  ``tests/test_control_equivalence.py`` proves the two
engines bit-identical under it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.policy_keys import DEFAULT_CRITICALITY
from repro.errors import ConfigurationError

_INF = float("inf")

# Scaling formulas understood by :class:`AutoscalerPolicy`.
SCALING_POLICIES = ("target_utilization", "queue_depth")


def warmup_from_coldstart(
    coldstart, image_bytes: int, drive=None
) -> float:
    """Scale-up warmup delay from the cold-start accounting (§5.3).

    A freshly provisioned instance is not a warm container: it pays the
    full registry pull + unpack + health check before serving — unless a
    DSCS drive is supplied, in which case the image reloads over the
    P2P link from parked flash (the ``serverless/warmpool.py`` flash
    parking path).
    """
    if drive is not None:
        return float(coldstart.p2p_reload_seconds(image_bytes, drive))
    return float(coldstart.cold_start_seconds(image_bytes))


def observer_plane(
    max_instances: int, control_interval_seconds: float = 1.0
) -> ControlPlane:
    """A control plane that actuates nothing but records telemetry.

    Pinning ``min_instances = initial_instances = max_instances`` makes
    every scaling decision a no-op (desired is always clamped to the
    ceiling), so the run has exactly the fault/chaos dynamics of an
    uncontrolled one — but routes through the control engines, which
    emit the per-completion app record
    (:attr:`~repro.cluster.simulation.SimulationSeries.completed_app_ids`)
    and the live-capacity series.  The ``fig15-overload`` study uses it
    for its *uncontrolled* cells, so per-criticality latency slicing
    works on both sides of the comparison.
    """
    return ControlPlane(
        autoscaler=AutoscalerPolicy(
            min_instances=int(max_instances),
            initial_instances=int(max_instances),
        ),
        control_interval_seconds=control_interval_seconds,
    )


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Reactive scaling of the live instance count.

    - ``policy`` — ``"target_utilization"`` (``desired = ceil(busy /
      target_utilization)``, the classic HPA formula) or
      ``"queue_depth"`` (``desired = busy + ceil(queue_len /
      queue_per_instance)``).
    - ``min_instances`` — the floor the fleet never scales below; the
      ceiling is the simulation's ``max_instances``.
    - ``initial_instances`` — live count at t=0 (defaults to
      ``min_instances``).
    - ``scale_up_cooldown_seconds`` / ``scale_down_cooldown_seconds`` —
      minimum spacing between consecutive decisions in the same
      direction (down defaults slower, the usual anti-flap asymmetry).
    - ``warmup_seconds`` — delay before scaled-up instances start
      serving (cold-start penalty; see :func:`warmup_from_coldstart`).
      Scale-downs always take effect immediately but never kill
      in-flight work.
    """

    policy: str = "target_utilization"
    min_instances: int = 1
    initial_instances: Optional[int] = None
    target_utilization: float = 0.7
    queue_per_instance: float = 4.0
    scale_up_cooldown_seconds: float = 0.0
    scale_down_cooldown_seconds: float = 30.0
    warmup_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.policy not in SCALING_POLICIES:
            raise ConfigurationError(
                f"unknown scaling policy {self.policy!r}; expected one "
                f"of {SCALING_POLICIES}"
            )
        if self.min_instances < 1:
            raise ConfigurationError(
                f"min_instances must be >= 1, got {self.min_instances}"
            )
        if (
            self.initial_instances is not None
            and self.initial_instances < self.min_instances
        ):
            raise ConfigurationError(
                f"initial_instances ({self.initial_instances}) below "
                f"min_instances ({self.min_instances})"
            )
        if not 0.0 < self.target_utilization <= 1.0:
            raise ConfigurationError(
                "target_utilization must be in (0, 1], got "
                f"{self.target_utilization}"
            )
        if self.queue_per_instance <= 0:
            raise ConfigurationError(
                f"non-positive queue_per_instance: {self.queue_per_instance}"
            )
        for name in (
            "scale_up_cooldown_seconds",
            "scale_down_cooldown_seconds",
            "warmup_seconds",
        ):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ConfigurationError(f"invalid {name}: {value}")


@dataclass(frozen=True)
class OverloadPolicy:
    """Admission control and graceful degradation under overload.

    Four mechanisms, each optional and independently disableable:

    - **Token bucket** (``admission_rate_rps``) — arrivals spend one
      token; an empty bucket sheds.  The bucket holds
      ``admission_rate_rps * admission_burst_seconds`` tokens (starts
      full) and refills once per control tick, quantized so both
      engines see the identical token sequence.
    - **CoDel shedder** (``queue_delay_target_seconds``) — when the
      head-of-line request has waited longer than the target at a
      control tick, ``max(1, ceil(shed_fraction * queue_len))`` of the
      *worst-key* queued requests are shed.
    - **Brownout ladder** (``priorities`` + an overload signal) — a
      criticality threshold steps down one class per overloaded tick
      (shedding the least critical traffic first) and recovers one
      class per healthy tick.  Classes below ``min_shed_priority`` are
      never shed: the rack brownouts, it does not black out.  Overload
      is signalled by the queue-delay target and/or a windowed p99
      exceeding ``latency_slo_seconds``.
    - **Circuit breaker** (``breaker_failure_threshold``) — an app
      whose per-window failed attempts reach both
      ``breaker_min_failures`` and the given failure *fraction* is shed
      entirely for ``breaker_open_seconds``.

    ``priorities`` reuses the criticality-key convention of
    :mod:`repro.cluster.policy_keys`: smaller integer = more critical,
    missing apps get ``default_priority``.
    """

    admission_rate_rps: Optional[float] = None
    admission_burst_seconds: float = 2.0
    queue_delay_target_seconds: Optional[float] = None
    shed_fraction: float = 0.1
    latency_slo_seconds: Optional[float] = None
    priorities: Optional[Mapping[str, int]] = None
    default_priority: int = DEFAULT_CRITICALITY
    min_shed_priority: int = 1
    breaker_failure_threshold: Optional[float] = None
    breaker_min_failures: int = 5
    breaker_open_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.priorities is not None:
            # Freeze the mapping into sorted tuples: hashable, ordered,
            # and immune to caller-side mutation.
            object.__setattr__(
                self,
                "priorities",
                tuple(
                    sorted(
                        (str(name), int(rank))
                        for name, rank in dict(self.priorities).items()
                    )
                ),
            )
        for name in ("admission_rate_rps", "queue_delay_target_seconds",
                     "latency_slo_seconds", "breaker_failure_threshold"):
            value = getattr(self, name)
            if value is not None and (
                not math.isfinite(value) or value <= 0
            ):
                raise ConfigurationError(
                    f"non-positive {name}: {value}; use None to disable"
                )
        if (
            self.breaker_failure_threshold is not None
            and self.breaker_failure_threshold > 1.0
        ):
            raise ConfigurationError(
                "breaker_failure_threshold is a fraction in (0, 1], got "
                f"{self.breaker_failure_threshold}"
            )
        if self.admission_burst_seconds <= 0:
            raise ConfigurationError(
                "non-positive admission_burst_seconds: "
                f"{self.admission_burst_seconds}"
            )
        if not 0.0 <= self.shed_fraction <= 1.0:
            raise ConfigurationError(
                f"shed_fraction must be in [0, 1], got {self.shed_fraction}"
            )
        if self.min_shed_priority < 0:
            raise ConfigurationError(
                f"negative min_shed_priority: {self.min_shed_priority}"
            )
        if self.breaker_min_failures < 1:
            raise ConfigurationError(
                "breaker_min_failures must be >= 1, got "
                f"{self.breaker_min_failures}"
            )
        if self.breaker_open_seconds <= 0:
            raise ConfigurationError(
                f"non-positive breaker_open_seconds: "
                f"{self.breaker_open_seconds}"
            )

    @property
    def active(self) -> bool:
        """Whether any protection mechanism is enabled."""
        return (
            self.admission_rate_rps is not None
            or self.queue_delay_target_seconds is not None
            or self.latency_slo_seconds is not None
            or self.breaker_failure_threshold is not None
        )

    def priority_map(self) -> Mapping[str, int]:
        return dict(self.priorities or ())


@dataclass(frozen=True)
class ControlPlane:
    """The closed-loop controller configuration for one simulation.

    Bundles an optional autoscaler and an optional overload policy
    evaluated every ``control_interval_seconds``.  An inert plane
    (neither configured) routes the simulation to the existing
    engines — attaching ``ControlPlane()`` changes nothing, matching
    the inert-``FaultSchedule`` convention.
    """

    autoscaler: Optional[AutoscalerPolicy] = None
    overload: Optional[OverloadPolicy] = None
    control_interval_seconds: float = 1.0

    def __post_init__(self) -> None:
        if (
            not math.isfinite(self.control_interval_seconds)
            or self.control_interval_seconds <= 0
        ):
            raise ConfigurationError(
                "non-positive control interval: "
                f"{self.control_interval_seconds}"
            )

    @property
    def active(self) -> bool:
        """Whether this plane changes anything relative to no plane."""
        return self.autoscaler is not None or (
            self.overload is not None and self.overload.active
        )


class ControllerState:
    """The deterministic controller state machine, shared by engines.

    Both the event-driven oracle and the vectorized engine drive one
    instance of this class through the identical call sequence —
    :meth:`admit` / :meth:`gate_mask` + :meth:`consume` per arrival,
    :meth:`record_completion` / :meth:`record_failure` per terminating
    attempt, :meth:`on_tick` per control tick, :meth:`activate` per
    warmup expiry — so every decision (scaling, token spend, brownout
    step, breaker trip, shed victim selection) is bit-identical by
    construction.  No RNG is consumed anywhere.
    """

    def __init__(
        self,
        plane: ControlPlane,
        max_instances: int,
        app_names: Sequence[str],
    ) -> None:
        self.plane = plane
        self.max_instances = int(max_instances)
        self.app_names = list(app_names)
        n_apps = len(self.app_names)

        autoscaler = plane.autoscaler
        if autoscaler is not None:
            initial = (
                autoscaler.initial_instances
                if autoscaler.initial_instances is not None
                else autoscaler.min_instances
            )
            self.live = max(
                autoscaler.min_instances, min(self.max_instances, initial)
            )
        else:
            self.live = self.max_instances
        self.live_target = self.live
        self.scale_ups = 0
        self.scale_downs = 0
        self._last_up = -_INF
        self._last_down = -_INF
        # (time, live) steps for series reconstruction; live changes are
        # ranked before sample ticks, so samples read side="right".
        self.live_log: List[Tuple[float, int]] = [(0.0, self.live)]

        overload = plane.overload
        self.gating_active = overload is not None and overload.active
        self.tokens: Optional[float] = None
        self._bucket = 0.0
        self._rate = 0.0
        if overload is not None and overload.admission_rate_rps is not None:
            self._rate = float(overload.admission_rate_rps)
            self._bucket = self._rate * overload.admission_burst_seconds
            self.tokens = self._bucket

        self._priorities = np.full(n_apps, 0, dtype=np.int64)
        self._threshold: Optional[int] = None
        self._threshold_max = 0
        if overload is not None and overload.priorities is not None and (
            overload.queue_delay_target_seconds is not None
            or overload.latency_slo_seconds is not None
        ):
            ranks = overload.priority_map()
            self._priorities = np.array(
                [
                    int(ranks.get(name, overload.default_priority))
                    for name in self.app_names
                ],
                dtype=np.int64,
            )
            self._threshold_max = int(self._priorities.max(initial=0)) + 1
            self._threshold = self._threshold_max

        self._breaker_on = (
            overload is not None
            and overload.breaker_failure_threshold is not None
        )
        self._slo_on = (
            overload is not None and overload.latency_slo_seconds is not None
        )
        # Per-attempt window counters, cleared every control tick.
        self.windows_active = self._breaker_on or self._slo_on
        self._open_until = np.full(n_apps, -_INF)
        self._window_failures = np.zeros(n_apps, dtype=np.int64)
        self._window_successes = np.zeros(n_apps, dtype=np.int64)
        self._window_latencies: List[float] = []
        self.breaker_trips = 0

        self.app_blocked = np.zeros(n_apps, dtype=bool)

    # -- arrival gate --------------------------------------------------

    def admit(self, app_id: int) -> bool:
        """Scalar arrival gate: shed, or admit and spend a token."""
        if not self.gating_active:
            return True
        if self.app_blocked[app_id]:
            return False
        if self.tokens is not None:
            if self.tokens < 1.0:
                return False
            self.tokens -= 1.0
        return True

    def gate_mask(self, app_ids: np.ndarray) -> np.ndarray:
        """Vectorized gate over a chunk of arrivals (no token spend).

        Pure: equals running :meth:`admit` over the chunk with the
        current token balance, but leaves the balance untouched — the
        caller commits a prefix and then spends via :meth:`consume`.
        Valid only while no refill interleaves (chunks are cut at
        control ticks).
        """
        admitted = ~self.app_blocked[app_ids]
        if self.tokens is not None:
            available = int(self.tokens)
            positions = np.nonzero(admitted)[0]
            if len(positions) > available:
                admitted[positions[available:]] = False
        return admitted

    def consume(self, count: int) -> None:
        """Spend tokens for ``count`` committed admissions."""
        if self.tokens is not None and count:
            self.tokens -= float(count)

    # -- telemetry feeds -----------------------------------------------

    def record_completion(self, app_id: int, latency: float) -> None:
        if self._breaker_on:
            self._window_successes[app_id] += 1
        if self._slo_on:
            self._window_latencies.append(latency)

    def record_failure(self, app_id: int) -> None:
        if self._breaker_on:
            self._window_failures[app_id] += 1

    # -- control tick --------------------------------------------------

    def on_tick(
        self,
        now: float,
        busy: int,
        queue_len: int,
        head_wait: Optional[float],
    ) -> Tuple[int, Optional[Tuple[float, int]]]:
        """One control decision.  Returns ``(shed_count, activation)``.

        ``shed_count`` requests should be shed from the queue
        (worst key first, via :meth:`shed_victims`); ``activation`` is
        an ``(at_time, target)`` warmup event the engine must schedule,
        or ``None``.  Immediate capacity changes (warmup-free scale-ups
        and all scale-downs) are applied to :attr:`live` in place — the
        engine re-reads it after every tick.
        """
        overload = self.plane.overload
        activation: Optional[Tuple[float, int]] = None
        shed_count = 0

        if self.gating_active:
            assert overload is not None
            if self.tokens is not None:
                self.tokens = min(
                    self._bucket,
                    self.tokens
                    + self._rate * self.plane.control_interval_seconds,
                )

            # Overload signal: head-of-line delay and/or windowed p99.
            delay_target = overload.queue_delay_target_seconds
            delayed = (
                delay_target is not None
                and head_wait is not None
                and head_wait > delay_target
            )
            slo_violated = False
            if self._slo_on and self._window_latencies:
                p99 = float(
                    np.percentile(
                        np.asarray(self._window_latencies), 99.0
                    )
                )
                slo_violated = p99 > overload.latency_slo_seconds

            if delayed:
                shed_count = min(
                    queue_len,
                    max(
                        1,
                        int(
                            math.ceil(
                                overload.shed_fraction * queue_len
                            )
                        ),
                    ),
                )

            if self._threshold is not None:
                if delayed or slo_violated:
                    self._threshold = max(
                        overload.min_shed_priority, self._threshold - 1
                    )
                else:
                    self._threshold = min(
                        self._threshold_max, self._threshold + 1
                    )

            if self._breaker_on:
                failures = self._window_failures
                successes = self._window_successes
                attempts = failures + successes
                trip = (
                    (failures >= overload.breaker_min_failures)
                    & (self._open_until <= now)
                    & (
                        failures
                        >= overload.breaker_failure_threshold
                        * np.maximum(attempts, 1)
                    )
                )
                if trip.any():
                    self.breaker_trips += int(np.count_nonzero(trip))
                    self._open_until[trip] = (
                        now + overload.breaker_open_seconds
                    )

            blocked = self._open_until > now
            if self._threshold is not None:
                blocked = blocked | (self._priorities >= self._threshold)
            self.app_blocked = blocked

            if self.windows_active:
                self._window_failures[:] = 0
                self._window_successes[:] = 0
                self._window_latencies = []

        autoscaler = self.plane.autoscaler
        if autoscaler is not None:
            desired = self._desired(autoscaler, busy, queue_len)
            if desired > self.live_target:
                if now - self._last_up >= autoscaler.scale_up_cooldown_seconds:
                    self.live_target = desired
                    self._last_up = now
                    self.scale_ups += 1
                    if autoscaler.warmup_seconds > 0:
                        activation = (
                            now + autoscaler.warmup_seconds, desired
                        )
                    else:
                        self._set_live(now, desired)
            elif desired < self.live_target:
                if (
                    now - self._last_down
                    >= autoscaler.scale_down_cooldown_seconds
                ):
                    self.live_target = desired
                    self._last_down = now
                    self.scale_downs += 1
                    if self.live > desired:
                        self._set_live(now, desired)

        return shed_count, activation

    def _desired(
        self, autoscaler: AutoscalerPolicy, busy: int, queue_len: int
    ) -> int:
        if autoscaler.policy == "target_utilization":
            desired = (
                int(math.ceil(busy / autoscaler.target_utilization))
                if busy
                else autoscaler.min_instances
            )
        else:  # queue_depth
            desired = busy + int(
                math.ceil(queue_len / autoscaler.queue_per_instance)
            )
        return max(
            autoscaler.min_instances, min(self.max_instances, desired)
        )

    def _set_live(self, now: float, value: int) -> None:
        if value != self.live:
            self.live = value
            self.live_log.append((now, value))

    def activate(self, now: float, target: int) -> None:
        """A scale-up warmup expired: instances come online.

        Clamped by the *current* target, so a scale-down issued during
        the warmup wins; never shrinks (a newer, larger activation may
        already have landed).
        """
        self._set_live(
            now, max(self.live, min(target, self.live_target))
        )

    # -- shed victim selection -----------------------------------------

    @staticmethod
    def shed_victims(
        entries: Sequence[Tuple[int, tuple]], count: int
    ) -> List[int]:
        """Pick ``count`` queued requests to shed, worst key first.

        ``entries`` are ``(qseq, sort_key)`` pairs where ``sort_key``
        is the policy's heap key ``(*prefix, qseq)``; victims are the
        largest keys — the requests the scheduler would serve last —
        returned worst-first so both engines record the drops in the
        identical order.
        """
        if count <= 0 or not entries:
            return []
        ranked = sorted(entries, key=lambda entry: entry[1])
        return [qseq for qseq, _ in reversed(ranked[-count:])]
