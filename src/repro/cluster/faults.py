"""Seeded fault injection and retry policies for the rack simulator.

The paper's fail-over story (§5.3) is that DSCS degrades to conventional
execution, never to an error.  The single-platform layer proves that with
unhealthy-node failover in the object store; this module adds the
rack-scale availability dimension: a :class:`FaultSchedule` describing
instance crash–recover processes, correlated node outages, and transient
service slowdowns, plus a :class:`RetryPolicy` describing how the control
plane reacts (per-request queue timeouts, bounded retries with
exponential backoff and jitter, hedged duplicate dispatch).

Determinism is the design center, following the sampling-fidelity lesson
of *Memory Access Vectors*: a schedule is a pure function of its own
seed, materialized up front into a :class:`FaultTimeline` of capacity
events and slowdown windows that is **independent of the simulation
RNG**.  Perturbed runs therefore stay comparable across engines, seeds,
and PRs — the event-driven oracle and the vectorized chaos engine
consume the identical timeline and are bit-identical on it
(``tests/test_fault_equivalence.py``).

Retry jitter is likewise deterministic without touching any RNG stream:
the backoff factor for attempt ``a`` of request ``i`` is a splitmix64
hash of ``(jitter_seed, i, a)``, so it does not depend on the order in
which engines discover failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

# Drop-reason codes shared by every engine and the telemetry layer.
# Order is load-bearing only for reporting (``DROP_REASONS[code]``).
# ``shed`` is the control plane's terminal drop (admission control /
# queue shedding / brownout / circuit breaker — see
# :mod:`repro.cluster.control`); sheds are never retried.
REASON_QUEUE_FULL = 0
REASON_TIMEOUT = 1
REASON_CRASHED = 2
REASON_SHED = 3
DROP_REASONS = ("queue_full", "timeout", "crashed", "shed")

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 scramble round (public-domain constants)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _hash_unit(seed: int, sequence: int, attempt: int) -> float:
    """Deterministic uniform in ``[0, 1)`` from three integers."""
    h = _splitmix64(seed & _MASK64)
    h = _splitmix64(h ^ (sequence & _MASK64))
    h = _splitmix64(h ^ (attempt & _MASK64))
    return h / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the control plane reacts to per-request failures.

    - ``timeout_seconds`` — maximum *queue wait* per attempt; a request
      still queued when its timer fires fails with reason ``timeout``.
      Requests that start immediately never time out (execution is
      run-to-completion, as in the paper).
    - ``max_retries`` — failed attempts (timeout, crash kill, queue-full
      rejection) re-arrive up to this many times before counting as a
      drop.  Retries re-enter the scheduler queue through the policy's
      priority key with a fresh admission sequence, so they never jump
      ahead of equal-key originals.
    - ``backoff_base_seconds`` / ``backoff_cap_seconds`` / ``jitter`` —
      attempt ``a`` re-arrives ``min(cap, base * 2**a)`` seconds later,
      scaled by a deterministic jitter factor in ``[1 - jitter, 1)``.
    - ``hedge_after_seconds`` — when set, every started request
      dispatches a backup copy on its serving instance's backend replica
      after this long; the first copy to finish wins.  Modelled as
      ``effective = min(s1, hedge + s2)`` with both samples always drawn
      (eager draw keeps the RNG stream engine-order-independent).
    """

    timeout_seconds: Optional[float] = None
    max_retries: int = 0
    backoff_base_seconds: float = 0.5
    backoff_cap_seconds: float = 30.0
    jitter: float = 0.5
    hedge_after_seconds: Optional[float] = None
    jitter_seed: int = 2024

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"non-positive retry timeout: {self.timeout_seconds}; "
                "use timeout_seconds=None to disable timeouts"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"negative max_retries: {self.max_retries}"
            )
        if self.backoff_base_seconds < 0:
            raise ConfigurationError(
                f"negative backoff base: {self.backoff_base_seconds}"
            )
        if self.backoff_cap_seconds < 0:
            raise ConfigurationError(
                f"negative backoff cap: {self.backoff_cap_seconds}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be a fraction in [0, 1], got {self.jitter}"
            )
        if (
            self.hedge_after_seconds is not None
            and self.hedge_after_seconds <= 0
        ):
            raise ConfigurationError(
                f"non-positive hedge delay: {self.hedge_after_seconds}; "
                "use hedge_after_seconds=None to disable hedging"
            )

    @property
    def active(self) -> bool:
        """Whether this policy changes anything relative to no policy."""
        return (
            self.timeout_seconds is not None
            or self.hedge_after_seconds is not None
            or self.max_retries > 0
        )

    def backoff_seconds(self, sequence: int, attempt: int) -> float:
        """Delay before re-arrival of attempt ``attempt + 1``.

        A pure function of ``(jitter_seed, sequence, attempt)`` — no RNG
        stream is consumed, so the delay does not depend on the order in
        which an engine discovers failures.
        """
        delay = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * 2.0**attempt,
        )
        if self.jitter:
            unit = _hash_unit(self.jitter_seed, sequence, attempt)
            delay *= (1.0 - self.jitter) + self.jitter * unit
        return delay


@dataclass(frozen=True)
class FaultTimeline:
    """A :class:`FaultSchedule` materialized for one fleet and horizon.

    ``times``/``capacities`` are the capacity step function: at
    ``times[k]`` the fleet capacity becomes ``capacities[k]`` (already
    clamped to the schedule's floor, with no-op steps removed).
    ``slow_starts``/``slow_ends`` are merged half-open slowdown windows
    ``[start, end)`` during which service times are scaled by
    ``slowdown_multiplier``.  The timeline is pure data — both engines
    walk the same arrays, which is what makes chaos runs bit-comparable.
    """

    initial_capacity: int
    times: np.ndarray
    capacities: np.ndarray
    slow_starts: np.ndarray
    slow_ends: np.ndarray
    slowdown_multiplier: float = 1.0

    @classmethod
    def empty(cls, capacity: int) -> "FaultTimeline":
        """A fault-free timeline: constant capacity, no slow windows."""
        return cls(
            initial_capacity=int(capacity),
            times=np.empty(0),
            capacities=np.empty(0, dtype=np.int64),
            slow_starts=np.empty(0),
            slow_ends=np.empty(0),
        )

    @property
    def empty_timeline(self) -> bool:
        return len(self.times) == 0 and len(self.slow_starts) == 0

    def multiplier_at(self, t: float) -> float:
        """Service-time multiplier in effect at time ``t`` (scalar)."""
        starts = self.slow_starts
        if len(starts) == 0:
            return 1.0
        idx = int(np.searchsorted(starts, t, side="right")) - 1
        if idx >= 0 and t < float(self.slow_ends[idx]):
            return self.slowdown_multiplier
        return 1.0

    def multipliers(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`multiplier_at` — bit-identical per element."""
        if len(self.slow_starts) == 0:
            return np.ones(len(times))
        idx = np.searchsorted(self.slow_starts, times, side="right") - 1
        inside = (idx >= 0) & (times < self.slow_ends[np.maximum(idx, 0)])
        return np.where(inside, self.slowdown_multiplier, 1.0)

    def capacity_at(self, t: float) -> int:
        """Fleet capacity in effect at time ``t``."""
        if len(self.times) == 0:
            return self.initial_capacity
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0:
            return self.initial_capacity
        return int(self.capacities[idx])


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded description of rack-scale failure processes.

    Three independent processes, all Poisson with exponential repair:

    - **instance crashes** — individual instances fail with fleet-wide
      rate ``max_instances / instance_mtbf_seconds`` and recover after
      an exponential repair time (mean ``instance_mttr_seconds``);
    - **node outages** — correlated failures taking down ``node_size``
      instances at once, one process per ``max_instances // node_size``
      nodes;
    - **slowdown spikes** — transient windows (storage contention, GC
      pauses) during which every service time is scaled by
      ``slowdown_multiplier``.

    Capacity never drops below ``min_capacity`` — the modelled system
    degrades, it does not error (§5.3).  ``materialize`` is a pure
    function of ``(seed, max_instances, horizon)``, independent of the
    simulation RNG.
    """

    instance_mtbf_seconds: Optional[float] = None
    instance_mttr_seconds: float = 30.0
    node_outage_mtbf_seconds: Optional[float] = None
    node_mttr_seconds: float = 120.0
    node_size: int = 8
    slowdown_rate_per_minute: float = 0.0
    slowdown_multiplier: float = 2.0
    slowdown_duration_seconds: float = 10.0
    seed: int = 404
    min_capacity: int = 1

    def __post_init__(self) -> None:
        for name in ("instance_mtbf_seconds", "node_outage_mtbf_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"non-positive {name}: {value}; use None to disable"
                )
        for name in ("instance_mttr_seconds", "node_mttr_seconds"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"non-positive {name}: {value}")
        if self.node_size < 1:
            raise ConfigurationError(
                f"node_size must be >= 1, got {self.node_size}"
            )
        if self.slowdown_rate_per_minute < 0:
            raise ConfigurationError(
                "negative slowdown rate: "
                f"{self.slowdown_rate_per_minute}"
            )
        if self.slowdown_multiplier <= 0:
            raise ConfigurationError(
                f"non-positive slowdown multiplier: "
                f"{self.slowdown_multiplier}"
            )
        if self.slowdown_duration_seconds <= 0:
            raise ConfigurationError(
                "non-positive slowdown duration: "
                f"{self.slowdown_duration_seconds}"
            )
        if self.min_capacity < 1:
            raise ConfigurationError(
                f"min_capacity must be >= 1, got {self.min_capacity} "
                "(the modelled system degrades, it does not vanish)"
            )

    @property
    def active(self) -> bool:
        """Whether any failure process is enabled."""
        return (
            self.instance_mtbf_seconds is not None
            or self.node_outage_mtbf_seconds is not None
            or self.slowdown_rate_per_minute > 0
        )

    def _crash_deltas(
        self,
        rng: np.random.Generator,
        mtbf: float,
        mttr: float,
        horizon: float,
        width: int,
        sources: int,
    ) -> List[Tuple[float, int]]:
        """Capacity deltas for one crash–recover process.

        Failures form a Poisson process of rate ``sources / mtbf``
        (``sources`` independent exponential clocks superpose); each
        takes ``width`` instances down for an Exp(``mttr``) repair.
        Crashes are generated inside ``[0, horizon)`` only; recoveries
        may land beyond the horizon (a saturated rack keeps draining
        past the trace end).
        """
        deltas: List[Tuple[float, int]] = []
        if sources <= 0:
            return deltas
        mean_gap = mtbf / sources
        t = 0.0
        while True:
            t += float(rng.exponential(mean_gap))
            if t >= horizon:
                break
            repair = float(rng.exponential(mttr))
            deltas.append((t, -width))
            deltas.append((t + repair, width))
        return deltas

    def materialize(
        self, max_instances: int, horizon_seconds: float
    ) -> FaultTimeline:
        """Realize the schedule for one fleet size and trace horizon."""
        if max_instances <= 0:
            raise ConfigurationError(
                f"non-positive instances: {max_instances}"
            )
        if horizon_seconds < 0:
            raise ConfigurationError(
                f"negative horizon: {horizon_seconds}"
            )
        rng = np.random.default_rng(self.seed)
        deltas: List[Tuple[float, int]] = []
        if self.instance_mtbf_seconds is not None:
            deltas.extend(
                self._crash_deltas(
                    rng,
                    self.instance_mtbf_seconds,
                    self.instance_mttr_seconds,
                    horizon_seconds,
                    width=1,
                    sources=max_instances,
                )
            )
        if self.node_outage_mtbf_seconds is not None:
            nodes = max(1, max_instances // self.node_size)
            width = min(self.node_size, max_instances)
            deltas.extend(
                self._crash_deltas(
                    rng,
                    self.node_outage_mtbf_seconds,
                    self.node_mttr_seconds,
                    horizon_seconds,
                    width=width,
                    sources=nodes,
                )
            )

        times: List[float] = []
        caps: List[int] = []
        if deltas:
            deltas.sort(key=lambda event: event[0])
            raw = max_instances
            previous = max_instances
            for t, delta in deltas:
                raw += delta
                clamped = max(self.min_capacity, min(max_instances, raw))
                if times and times[-1] == t:
                    # Coincident events collapse to their net effect.
                    caps[-1] = clamped
                    previous = clamped
                    continue
                if clamped == previous:
                    continue  # no-op under the floor clamp
                times.append(t)
                caps.append(clamped)
                previous = clamped

        slow_starts: List[float] = []
        slow_ends: List[float] = []
        if self.slowdown_rate_per_minute > 0:
            mean_gap = 60.0 / self.slowdown_rate_per_minute
            t = 0.0
            while True:
                t += float(rng.exponential(mean_gap))
                if t >= horizon_seconds:
                    break
                end = t + self.slowdown_duration_seconds
                if slow_ends and t <= slow_ends[-1]:
                    # Overlapping windows merge (no multiplier stacking).
                    slow_ends[-1] = max(slow_ends[-1], end)
                else:
                    slow_starts.append(t)
                    slow_ends.append(end)

        return FaultTimeline(
            initial_capacity=max_instances,
            times=np.asarray(times, dtype=np.float64),
            capacities=np.asarray(caps, dtype=np.int64),
            slow_starts=np.asarray(slow_starts, dtype=np.float64),
            slow_ends=np.asarray(slow_ends, dtype=np.float64),
            slowdown_multiplier=float(self.slowdown_multiplier),
        )
