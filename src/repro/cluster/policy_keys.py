"""The priority-key core behind every scheduling policy.

Each of the rack scheduler's policies — FCFS (the paper's deployed
baseline, §5.3), shortest-job-first, criticality classes, DAG-aware —
is secretly the same algorithm: serve the queued request with the
smallest *static per-application key vector*, breaking ties by admission
sequence.  This module makes that structure explicit:

- :class:`PolicyKey` — a declarative policy description: a name, a
  per-application key vector (validated at construction), and a default
  vector for applications the policy was not configured with.  The full
  sort key of a queued request is ``(*key_for(app), sequence)``, a
  strict total order.
- :func:`fcfs_key` / :func:`sjf_key` / :func:`criticality_key` /
  :func:`dag_key` — the four concrete keys, each owning its own input
  validation.
- :class:`KeyedQueue` — a heap-backed priority queue with lazy deletion
  (the :class:`~repro.sim.event_queue.EventQueue` pattern generalized to
  arbitrary sort keys), turning the O(queue) linear ``min`` +
  ``list.remove`` pop of the old imperative policies into O(log queue).

Two backends consume a :class:`PolicyKey`: the event-driven simulator
(via :mod:`repro.cluster.schedulers`, whose policy classes are now thin
wrappers over ``KeyedQueue``) and the vectorized index-priority engine
in :mod:`repro.cluster.policy_engine`, which dispatches congested
stretches by the same ``(*key, sequence)`` order on a primitive heap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SchedulingError

# Priority class assigned to applications absent from a criticality map.
DEFAULT_CRITICALITY = 10


@dataclass(frozen=True)
class PolicyKey:
    """A scheduling policy as data: static per-app key vectors.

    ``app_keys`` maps application name to its key vector; applications
    not in the map key to ``default_key``.  Lower vectors are served
    first; equal vectors fall back to admission sequence, so the induced
    order over queued requests is strict and deterministic.
    """

    name: str
    app_keys: Mapping[str, Tuple[float, ...]]
    default_key: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("policy key needs a non-empty name")
        object.__setattr__(self, "app_keys", dict(self.app_keys))
        object.__setattr__(
            self, "default_key", tuple(self.default_key)
        )
        width = len(self.default_key)
        for component in self.default_key:
            if math.isnan(component):
                raise SchedulingError(
                    f"{self.name}: NaN default-key component "
                    "(NaN breaks the total order)"
                )
        for app, vector in self.app_keys.items():
            if len(vector) != width:
                raise SchedulingError(
                    f"{self.name}: key vector for {app!r} has width "
                    f"{len(vector)}, expected {width}"
                )
            for component in vector:
                if math.isnan(component):
                    raise SchedulingError(
                        f"{self.name}: NaN key component for {app!r} "
                        "(NaN breaks the total order)"
                    )

    @property
    def width(self) -> int:
        """Number of components in every key vector."""
        return len(self.default_key)

    def key_for(self, app_name: str) -> Tuple[float, ...]:
        """The static key vector for one application."""
        return self.app_keys.get(app_name, self.default_key)

    def knows(self, app_name: str) -> bool:
        """Whether the policy was configured with this application."""
        return app_name in self.app_keys


def fcfs_key() -> PolicyKey:
    """FCFS as a key: the empty vector — sequence order decides alone."""
    return PolicyKey(name="fcfs", app_keys={}, default_key=())


def sjf_key(service_estimates: Mapping[str, float]) -> PolicyKey:
    """Shortest-job-first: key by expected service time.

    Unknown applications key to ``+inf`` and therefore sort last.
    """
    if not service_estimates:
        raise SchedulingError("SJF needs at least one service estimate")
    app_keys: Dict[str, Tuple[float, ...]] = {}
    for app, estimate in service_estimates.items():
        estimate = float(estimate)
        if estimate <= 0:
            raise SchedulingError(
                f"non-positive service estimate for {app!r}: {estimate}"
            )
        app_keys[app] = (estimate,)
    return PolicyKey(
        name="sjf", app_keys=app_keys, default_key=(float("inf"),)
    )


def criticality_key(
    priorities: Mapping[str, int],
    default_priority: int = DEFAULT_CRITICALITY,
) -> PolicyKey:
    """Criticality classes: key by priority (lower = more critical).

    A criticality policy with no priorities is FCFS with extra steps —
    almost certainly a configuration mistake — so an empty map is
    rejected, as are non-integer priority values.
    """
    if not priorities:
        raise SchedulingError(
            "criticality policy requires a non-empty priority map "
            "(an empty one degenerates to FCFS)"
        )
    app_keys: Dict[str, Tuple[float, ...]] = {}
    for app, priority in priorities.items():
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise SchedulingError(
                f"non-integer priority for {app!r}: {priority!r}"
            )
        app_keys[app] = (float(priority),)
    if isinstance(default_priority, bool) or not isinstance(
        default_priority, int
    ):
        raise SchedulingError(
            f"non-integer default priority: {default_priority!r}"
        )
    return PolicyKey(
        name="criticality",
        app_keys=app_keys,
        default_key=(float(default_priority),),
    )


def dag_key(applications: Mapping[str, Any]) -> PolicyKey:
    """DAG-aware: key by negated acceleratable-function count.

    Deep pipelines gain the most from DSCS (paper Fig. 16), so more
    acceleratable functions means a smaller key, i.e. served earlier.
    """
    if not applications:
        raise SchedulingError("DAG-aware policy needs the application set")
    app_keys = {
        name: (-float(len(app.accelerated_functions)),)
        for name, app in applications.items()
    }
    return PolicyKey(name="dag", app_keys=app_keys, default_key=(0.0,))


# Entries are plain lists (not dataclasses) so ``heapq`` sifts compare
# raw sort-key tuples — the hot path of every event-driven dispatch.
# Layout: [sort_key, item, cancelled].
_SORT, _ITEM, _CANCELLED = 0, 1, 2


@dataclass
class KeyedHandle:
    """An opaque handle for :meth:`KeyedQueue.cancel` (lazy deletion)."""

    _entry: list = field(repr=False)

    @property
    def cancelled(self) -> bool:
        return self._entry[_CANCELLED]


class KeyedQueue:
    """Min-heap over caller-supplied sort keys, with lazy deletion.

    The generalization of :class:`~repro.sim.event_queue.EventQueue`
    from ``(time, insertion order)`` to arbitrary totally ordered keys:
    callers push ``(sort_key, item)`` pairs where ``sort_key`` must be
    unique per entry (policies append the admission sequence, which is).
    ``cancel`` marks an entry dead in O(1); dead entries are skipped on
    ``pop``/``peek``, so a cancelled request costs nothing until its key
    surfaces.
    """

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, sort_key: Tuple, item: Any) -> KeyedHandle:
        """Insert ``item`` under ``sort_key``; returns a cancel handle."""
        entry = [sort_key, item, False]
        heappush(self._heap, entry)
        self._live += 1
        return KeyedHandle(entry)

    def cancel(self, handle: KeyedHandle) -> None:
        """Mark a previously pushed entry as removed (lazy deletion)."""
        entry = handle._entry
        if not entry[_CANCELLED]:
            entry[_CANCELLED] = True
            self._live -= 1

    def pop(self) -> Any:
        """Remove and return the live item with the smallest sort key."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if not entry[_CANCELLED]:
                self._live -= 1
                return entry[_ITEM]
        raise SchedulingError("pop from empty keyed queue")

    def peek(self) -> Optional[Any]:
        """The live item with the smallest sort key, or ``None``."""
        heap = self._heap
        while heap and heap[0][_CANCELLED]:
            heappop(heap)
        if not heap:
            return None
        return heap[0][_ITEM]
