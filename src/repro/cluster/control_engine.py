"""Closed-loop control engines for the rack simulator (oracle + fast).

Both engines run the chaos dynamics of :mod:`repro.cluster.chaos_engine`
*plus* a :class:`~repro.cluster.control.ControlPlane` evaluated at a
fixed control interval: reactive autoscaling (live capacity becomes
``min(autoscaled, surviving)``, where ``surviving`` is the fault
timeline's step function) and overload protection (token-bucket
admission, CoDel-style queue shedding, brownout by criticality,
per-app circuit breaking — every shed a terminal ``shed`` drop).

Same-timestamp events extend the chaos rank rule with control events
ranked between faults and timers (a capacity crash is ground truth the
controller reacts to; control decisions precede the traffic they
govern):

    fault < control (decision before warmup activation)
          < timeout < arrival (trace before injected) < tick < completion

Shared semantics, implemented twice:

- :func:`run_control_event` — the reference oracle: one ranked event
  heap with explicit handlers for control ticks and warmup
  activations on top of the chaos oracle's handlers.
- :func:`run_control_vectorized` — the chaos engine's next-event loop
  with two more event sources (decision ticks, warmup activations).
  Control ticks are natural chunk boundaries: pass-A chunks are
  additionally cut at the next control event, the arrival gate is
  applied as a vectorized mask (token spend committed only for the
  admitted prefix that actually starts), and the tentative-draw RNG
  rollback covers admitted arrivals only — shed arrivals never touch
  the RNG, in either engine.

The decision logic itself lives in one place —
:class:`~repro.cluster.control.ControllerState` — and is *shared*, not
re-implemented: both engines feed it the identical observations in the
identical order, which is what makes the control loop bit-identical by
construction (``tests/test_control_equivalence.py``).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

import numpy as np

from repro.cluster.control import ControllerState, ControlPlane
from repro.cluster.fast_engine import (
    _CHUNK_MAX,
    _CHUNK_MIN,
    _ServicePools,
    sample_tick_times,
)
from repro.cluster.faults import (
    REASON_CRASHED,
    REASON_QUEUE_FULL,
    REASON_SHED,
    REASON_TIMEOUT,
    FaultTimeline,
    RetryPolicy,
)
from repro.cluster.policy_keys import KeyedQueue
from repro.errors import SchedulingError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.schedulers import KeyedPolicy
    from repro.cluster.simulation import RackSimulation, SimulationSeries
    from repro.cluster.trace import RequestTrace

_INF = float("inf")

# Same-timestamp event ranks (see module docstring).
_RANK_FAULT = 0
_RANK_CONTROL = 1
_RANK_TIMER = 2
_RANK_ARRIVAL = 3
_RANK_TICK = 4
_RANK_COMPLETION = 5


def _live_series(
    state: ControllerState, ticks: np.ndarray
) -> np.ndarray:
    """Live-capacity value at each sample tick, from the change log.

    Live changes happen at control events (rank before the sample
    tick), so a change at a tick's own timestamp is visible to it —
    ``side="right"``.
    """
    times = np.asarray([t for t, _ in state.live_log])
    values = np.asarray([v for _, v in state.live_log], dtype=np.int64)
    idx = np.searchsorted(times, ticks, side="right") - 1
    return values[np.maximum(idx, 0)]


def run_control_event(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    trace: "RequestTrace",
    sample_interval_seconds: float,
    timeline: FaultTimeline,
    retry: RetryPolicy,
    plane: ControlPlane,
) -> "SimulationSeries":
    """The closed-loop reference oracle (explicit ranked event heap).

    Requests are the chaos oracle's ``(qseq, orig_seq, attempt,
    app_name, orig_arrival)`` tuples.  Capacity is ``min(live,
    surviving)``: fault events move ``surviving`` (and kill in-flight
    work down to it — crashes kill), control events move ``live``
    (scale-downs drain gracefully, killing nothing).
    """
    from repro.cluster.simulation import SimulationSeries

    n = len(trace)
    if n and float(trace.arrival_seconds[0]) < 0:
        raise SimulationError(
            f"event scheduled at negative time {float(trace.arrival_seconds[0])}"
        )
    qmax = sim._queue_depth
    timeout = retry.timeout_seconds
    hedge = retry.hedge_after_seconds
    max_retries = retry.max_retries
    multiplier_at = timeline.multiplier_at
    observe_app = policy.observe_app
    key_for = policy.key.key_for
    service_time = sim._service_time

    app_names = list(dict.fromkeys(trace.app_names))
    name_to_id = {name: i for i, name in enumerate(app_names)}
    state = ControllerState(plane, sim._max_instances, app_names)
    windows = state.windows_active
    surviving = timeline.initial_capacity
    cap = min(state.live, surviving)

    events: List[tuple] = []
    counter = count()

    queue = KeyedQueue()
    # qseq -> (enqueue time, heap sort key); doubles as the queued set.
    queued: Dict[int, Tuple[float, tuple]] = {}
    handles: Dict[int, object] = {}
    in_flight: Dict[int, tuple] = {}  # start_seq -> (completion, request)
    killed: Set[int] = set()
    busy = 0
    start_counter = 0
    retry_counter = 0

    dropped = 0
    drop_times: List[float] = []
    drop_reasons: List[int] = []
    latencies: List[float] = []
    completion_times: List[float] = []
    completed_ids: List[int] = []
    sample_times: List[float] = []
    queue_series: List[int] = []
    busy_series: List[int] = []
    live_series: List[int] = []
    retries = timeouts = crash_kills = 0
    hedges_launched = hedge_wins = 0

    def start_service(request: tuple, now: float) -> None:
        nonlocal busy, start_counter, hedges_launched, hedge_wins
        app_name = request[3]
        sample = service_time(app_name)
        mult = multiplier_at(now)
        effective = mult * sample
        if hedge is not None:
            backup = service_time(app_name)
            alternative = hedge + mult * backup
            if effective > hedge:
                hedges_launched += 1
            if alternative < effective:
                hedge_wins += 1
                effective = alternative
        done = now + effective
        seq = start_counter
        start_counter += 1
        in_flight[seq] = (done, request)
        busy += 1
        heappush(
            events, (done, _RANK_COMPLETION, next(counter), _on_completion, seq)
        )

    def fail(request: tuple, reason: int, now: float) -> None:
        nonlocal dropped, retries, retry_counter
        if windows:
            state.record_failure(name_to_id[request[3]])
        if request[2] < max_retries:
            retries += 1
            delay = retry.backoff_seconds(request[1], request[2])
            reattempt = (
                n + retry_counter,
                request[1],
                request[2] + 1,
                request[3],
                request[4],
            )
            retry_counter += 1
            heappush(
                events,
                (now + delay, _RANK_ARRIVAL, next(counter), _on_arrival, reattempt),
            )
        else:
            dropped += 1
            drop_times.append(now)
            drop_reasons.append(reason)

    def shed(now: float) -> None:
        """A terminal shed drop — never retried, never a 'failure'."""
        nonlocal dropped
        dropped += 1
        drop_times.append(now)
        drop_reasons.append(REASON_SHED)

    def dispatch(now: float) -> None:
        request = queue.pop()
        queued.pop(request[0], None)
        start_service(request, now)

    def _on_arrival(request: tuple, now: float) -> None:
        app_name = request[3]
        if app_name not in sim._applications:
            raise SchedulingError(f"unknown application {app_name!r}")
        if not state.admit(name_to_id[app_name]):
            shed(now)
            return
        if busy < cap:
            observe_app(app_name)
            start_service(request, now)
        elif len(queue) < qmax:
            observe_app(app_name)
            qseq = request[0]
            sort_key = (*key_for(app_name), qseq)
            handles[qseq] = queue.push(sort_key, request)
            queued[qseq] = (now, sort_key)
            if timeout is not None:
                heappush(
                    events,
                    (now + timeout, _RANK_TIMER, next(counter), _on_timer, request),
                )
        else:
            fail(request, REASON_QUEUE_FULL, now)

    def _on_timer(request: tuple, now: float) -> None:
        nonlocal timeouts
        qseq = request[0]
        if qseq not in queued:
            return  # already served, shed, or failed; stale timer
        queue.cancel(handles.pop(qseq))
        queued.pop(qseq)
        timeouts += 1
        fail(request, REASON_TIMEOUT, now)

    def _drain(now: float) -> None:
        while busy < cap and len(queue):
            dispatch(now)

    def _on_fault(new_cap: int, now: float) -> None:
        nonlocal surviving, cap, busy, crash_kills
        surviving = new_cap
        if surviving < busy:
            # Crashes kill: the in-flight requests that would finish
            # last die, down to the surviving machine count.  Graceful
            # scale-downs never enter here.
            victims = sorted(
                (done, seq) for seq, (done, _) in in_flight.items()
            )[surviving - busy:]
            for _, seq in reversed(victims):
                _, request = in_flight.pop(seq)
                killed.add(seq)
                busy -= 1
                crash_kills += 1
                fail(request, REASON_CRASHED, now)
        cap = min(state.live, surviving)
        _drain(now)

    def _on_control(payload: tuple, now: float) -> None:
        nonlocal cap
        kind, target = payload
        if kind == "tick":
            head_wait = None
            if queued:
                head_wait = now - min(t for t, _ in queued.values())
            shed_count, activation = state.on_tick(
                now, busy, len(queued), head_wait
            )
            if shed_count:
                victims = state.shed_victims(
                    [(qseq, key) for qseq, (_, key) in queued.items()],
                    shed_count,
                )
                for qseq in victims:
                    queue.cancel(handles.pop(qseq))
                    queued.pop(qseq)
                    shed(now)
            if activation is not None:
                at, live_target = activation
                heappush(
                    events,
                    (at, _RANK_CONTROL, next(counter), _on_control,
                     ("warmup", live_target)),
                )
        else:
            state.activate(now, target)
        cap = min(state.live, surviving)
        _drain(now)

    def _on_completion(seq: int, now: float) -> None:
        nonlocal busy
        if seq in killed:
            killed.discard(seq)
            return
        _, request = in_flight.pop(seq)
        busy -= 1
        latency = now - request[4]
        latencies.append(latency)
        completion_times.append(now)
        app_id = name_to_id[request[3]]
        completed_ids.append(app_id)
        if windows:
            state.record_completion(app_id, latency)
        if len(queue) and busy < cap:
            dispatch(now)

    def _on_sample(_: object, now: float) -> None:
        sample_times.append(now)
        queue_series.append(len(queue))
        busy_series.append(busy)
        live_series.append(state.live)

    for sequence, (arrival, app_name) in enumerate(
        zip(trace.arrival_seconds, trace.app_names)
    ):
        arrival = float(arrival)
        request = (sequence, sequence, 0, app_name, arrival)
        heappush(
            events, (arrival, _RANK_ARRIVAL, next(counter), _on_arrival, request)
        )
    for t, capacity in zip(
        timeline.times.tolist(), timeline.capacities.tolist()
    ):
        heappush(events, (t, _RANK_FAULT, next(counter), _on_fault, int(capacity)))
    # Decision ticks are pushed at setup, so at an equal timestamp they
    # fire before any runtime-scheduled warmup activation (push order
    # breaks the rank tie) — the vectorized engine encodes the same rule.
    for tick in sample_tick_times(
        trace.duration_seconds, plane.control_interval_seconds
    ).tolist():
        heappush(
            events,
            (tick, _RANK_CONTROL, next(counter), _on_control, ("tick", None)),
        )
    ticks = sample_tick_times(trace.duration_seconds, sample_interval_seconds)
    for tick in ticks.tolist():
        heappush(events, (tick, _RANK_TICK, next(counter), _on_sample, None))

    while events:
        when, _, _, handler, payload = heappop(events)
        handler(payload, when)

    return SimulationSeries(
        sample_times=ticks,
        queue_depth=np.array(queue_series),
        busy_instances=np.array(busy_series),
        completed_latency_seconds=np.array(latencies),
        completed_times=np.array(completion_times),
        dropped_requests=dropped,
        total_requests=n,
        dropped_times=np.array(drop_times),
        dropped_reasons=np.array(drop_reasons, dtype=np.int8),
        retries=retries,
        timeouts=timeouts,
        crash_kills=crash_kills,
        hedges_launched=hedges_launched,
        hedge_wins=hedge_wins,
        live_instances=np.array(live_series, dtype=np.int64),
        completed_app_ids=np.array(completed_ids, dtype=np.int64),
        app_catalog=tuple(app_names),
        scale_ups=state.scale_ups,
        scale_downs=state.scale_downs,
    )


def run_control_vectorized(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    trace: "RequestTrace",
    sample_interval_seconds: float,
    timeline: FaultTimeline,
    retry: RetryPolicy,
    plane: ControlPlane,
) -> "SimulationSeries":
    """Control engine: chaos pass-A chunking + control-epoch boundaries.

    The chaos engine's next-event loop with two added sources (decision
    ticks, warmup activations).  Contention-free chunks are additionally
    cut at the next control event; within a chunk the arrival gate runs
    as a vectorized mask over the current blocked set and token balance,
    with token spend committed only for the prefix that actually starts.
    Bit-identical to :func:`run_control_event`.
    """
    from repro.cluster.simulation import SimulationSeries

    arrivals = np.asarray(trace.arrival_seconds, dtype=np.float64)
    n = len(arrivals)
    if n and float(arrivals[0]) < 0:
        raise SimulationError(
            f"event scheduled at negative time {float(arrivals[0])}"
        )
    qmax = sim._queue_depth
    timeout = retry.timeout_seconds
    hedge = retry.hedge_after_seconds
    max_retries = retry.max_retries
    multiplier_at = timeline.multiplier_at
    observe_app = policy.observe_app
    service_time = sim._service_time

    app_names = list(dict.fromkeys(trace.app_names))
    name_to_id = {name: i for i, name in enumerate(app_names)}
    n_apps = len(app_names)
    app_ids = np.fromiter(
        (name_to_id[name] for name in trace.app_names), dtype=np.intp, count=n
    )
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)
    prefixes = [policy.key.key_for(name) for name in app_names]

    state = ControllerState(plane, sim._max_instances, app_names)
    windows = state.windows_active
    gating = state.gating_active
    surviving = timeline.initial_capacity
    cap = min(state.live, surviving)

    fault_times = timeline.times.tolist()
    fault_caps = timeline.capacities.tolist()
    n_faults = len(fault_times)
    has_slowdowns = len(timeline.slow_starts) > 0

    ctrl_times = sample_tick_times(
        trace.duration_seconds, plane.control_interval_seconds
    ).tolist()
    n_ctrl = len(ctrl_times)
    jc = 0
    activations: List[Tuple[float, int, int]] = []  # (time, order, target)
    activation_counter = count()

    # Queue entries: ``prefix + request`` where a request is the tuple
    # ``(qseq, app_id, orig_seq, attempt, orig_arrival)``.
    qheap: List[tuple] = []
    # qseq -> (enqueue time, heap sort key); doubles as the queued set.
    queued: Dict[int, Tuple[float, tuple]] = {}
    timers: List[tuple] = []
    injected: List[tuple] = []
    pending: List[Tuple[float, int]] = []  # (completion, start_seq), live only
    timer_counter = count()
    injected_counter = count()
    busy = 0
    retry_counter = 0

    start_origs: List[float] = []
    start_comps: List[float] = []
    start_meta: List[Tuple[int, int, int]] = []  # (orig_seq, attempt, app_id)
    killed_flags: List[bool] = []
    alive: Set[int] = set()

    starts_pre: List[float] = []
    starts_post: List[float] = []
    enq_times: List[float] = []
    deq_pre: List[float] = []
    deq_post: List[float] = []
    kill_times: List[float] = []

    dropped = 0
    drop_times: List[float] = []
    drop_reasons: List[int] = []
    retries = timeouts = crash_kills = 0
    hedges_launched = hedge_wins = 0

    def start(
        app_id: int,
        now: float,
        orig_arrival: float,
        orig_seq: int,
        attempt: int,
        pre_tick: bool,
    ) -> None:
        nonlocal busy, hedges_launched, hedge_wins
        sample = service_time(app_names[app_id])
        mult = multiplier_at(now)
        effective = mult * sample
        if hedge is not None:
            backup = service_time(app_names[app_id])
            alternative = hedge + mult * backup
            if effective > hedge:
                hedges_launched += 1
            if alternative < effective:
                hedge_wins += 1
                effective = alternative
        done = now + effective
        seq = len(start_comps)
        start_origs.append(orig_arrival)
        start_comps.append(done)
        start_meta.append((orig_seq, attempt, app_id))
        killed_flags.append(False)
        alive.add(seq)
        heappush(pending, (done, seq))
        busy += 1
        (starts_pre if pre_tick else starts_post).append(now)

    def fail(
        app_id: int, orig_seq: int, attempt: int, orig_arrival: float,
        reason: int, now: float,
    ) -> None:
        nonlocal dropped, retries, retry_counter
        if windows:
            state.record_failure(app_id)
        if attempt < max_retries:
            retries += 1
            delay = retry.backoff_seconds(orig_seq, attempt)
            reattempt = (
                n + retry_counter, app_id, orig_seq, attempt + 1, orig_arrival
            )
            retry_counter += 1
            heappush(
                injected, (now + delay, next(injected_counter), reattempt)
            )
        else:
            dropped += 1
            drop_times.append(now)
            drop_reasons.append(reason)

    def shed_drop(now: float) -> None:
        nonlocal dropped
        dropped += 1
        drop_times.append(now)
        drop_reasons.append(REASON_SHED)

    def dispatch(now: float, pre_tick: bool) -> None:
        while True:
            entry = heappop(qheap)
            request = entry[-5:]
            if request[0] in queued:
                break
        queued.pop(request[0])
        (deq_pre if pre_tick else deq_post).append(now)
        start(request[1], now, request[4], request[2], request[3], pre_tick)

    def admit(request: tuple, now: float) -> None:
        qseq, app_id, orig_seq, attempt, orig_arrival = request
        if not known[app_id]:
            raise SchedulingError(
                f"unknown application {app_names[app_id]!r}"
            )
        if not state.admit(app_id):
            shed_drop(now)
            return
        if busy < cap:
            observe_app(app_names[app_id])
            start(app_id, now, orig_arrival, orig_seq, attempt, True)
        elif len(queued) < qmax:
            observe_app(app_names[app_id])
            entry = prefixes[app_id] + request
            heappush(qheap, entry)
            queued[qseq] = (now, entry[: -4])
            enq_times.append(now)
            if timeout is not None:
                heappush(timers, (now + timeout, next(timer_counter), request))
        else:
            fail(app_id, orig_seq, attempt, orig_arrival, REASON_QUEUE_FULL, now)

    i = 0
    k = 0
    chunk_size = _CHUNK_MIN
    arrivals_list = arrivals.tolist()
    app_ids_list = app_ids.tolist()
    while True:
        if not queued:
            if timers:
                timers.clear()
        else:
            while timers and timers[0][2][0] not in queued:
                heappop(timers)

        t_fault = fault_times[k] if k < n_faults else _INF
        t_decision = ctrl_times[jc] if jc < n_ctrl else _INF
        t_activation = activations[0][0] if activations else _INF
        t_control = min(t_decision, t_activation)
        t_timer = timers[0][0] if timers else _INF
        t_trace = arrivals_list[i] if i < n else _INF
        t_injected = injected[0][0] if injected else _INF
        t_next = min(t_fault, t_control, t_timer, t_trace, t_injected)

        # Completions strictly before the next ranked event fire first
        # (completion has the last rank), each freeing a server for the
        # current min-key queued request and feeding the telemetry
        # window the controller reads at its next tick.
        while pending and pending[0][0] < t_next:
            done, seq = heappop(pending)
            busy -= 1
            alive.discard(seq)
            if windows:
                state.record_completion(
                    start_meta[seq][2], done - start_origs[seq]
                )
            if queued and busy < cap:
                dispatch(done, False)
        if t_next == _INF:
            break

        # ---- Fault event: surviving-capacity step -------------------
        if t_fault == t_next:
            surviving = int(fault_caps[k])
            k += 1
            if surviving < busy:
                shortfall = busy - surviving
                victims = sorted((start_comps[s], s) for s in alive)[
                    -shortfall:
                ]
                doomed = {seq for _, seq in victims}
                for _, seq in reversed(victims):
                    alive.discard(seq)
                    killed_flags[seq] = True
                    busy -= 1
                    crash_kills += 1
                    kill_times.append(t_fault)
                    orig_seq, attempt, app_id = start_meta[seq]
                    fail(
                        app_id, orig_seq, attempt, start_origs[seq],
                        REASON_CRASHED, t_fault,
                    )
                pending = [e for e in pending if e[1] not in doomed]
                heapify(pending)
            cap = min(state.live, surviving)
            while queued and busy < cap:
                dispatch(t_fault, True)
            continue

        # ---- Control event (decision tick before warmup activation) -
        if t_control == t_next:
            if t_decision <= t_activation:
                t = t_decision
                jc += 1
                head_wait = None
                if queued:
                    head_wait = t - min(e for e, _ in queued.values())
                shed_count, activation = state.on_tick(
                    t, busy, len(queued), head_wait
                )
                if shed_count:
                    victims = state.shed_victims(
                        [(qseq, key) for qseq, (_, key) in queued.items()],
                        shed_count,
                    )
                    for qseq in victims:
                        queued.pop(qseq)
                        deq_pre.append(t)
                        shed_drop(t)
                if activation is not None:
                    heappush(
                        activations,
                        (activation[0], next(activation_counter),
                         activation[1]),
                    )
            else:
                t, _, target = heappop(activations)
                state.activate(t, target)
            cap = min(state.live, surviving)
            while queued and busy < cap:
                dispatch(t, True)
            continue

        # ---- Timeout timer ------------------------------------------
        if t_timer == t_next:
            _, _, request = heappop(timers)
            if request[0] in queued:
                queued.pop(request[0])
                deq_pre.append(t_timer)
                timeouts += 1
                fail(
                    request[1], request[2], request[3], request[4],
                    REASON_TIMEOUT, t_timer,
                )
            continue

        # ---- Trace arrival (before an injected one at the same time) -
        if t_trace == t_next and t_trace <= t_injected:
            if not queued and busy < cap:
                # Pass A: contention-free chunk, cut at the next fault
                # and control event (both ranked before arrivals:
                # equal-time arrivals excluded) and the next injected
                # re-arrival (ranked after: equal-time included).
                hi = min(n, i + chunk_size)
                if k < n_faults:
                    hi = i + int(
                        np.searchsorted(arrivals[i:hi], t_fault, side="left")
                    )
                if t_control < _INF:
                    hi = i + int(
                        np.searchsorted(
                            arrivals[i:hi], t_control, side="left"
                        )
                    )
                if injected:
                    hi = i + int(
                        np.searchsorted(arrivals[i:hi], t_injected, side="right")
                    )
                unknown = np.nonzero(~known[app_ids[i:hi]])[0]
                if unknown.size:
                    if unknown[0] == 0:
                        raise SchedulingError(
                            f"unknown application {app_names[app_ids[i]]!r}"
                        )
                    hi = i + int(unknown[0])
                chunk = slice(i, hi)
                m = hi - i
                arr = arrivals[chunk]
                ids = app_ids[chunk]
                # Arrival gate over the chunk.  No refill interleaves
                # (chunks are cut at control events), so the mask equals
                # the oracle's arrival-by-arrival decisions; sheds never
                # draw service samples.
                if gating:
                    mask = state.gate_mask(ids)
                    all_admitted = bool(mask.all())
                else:
                    mask = None
                    all_admitted = True
                if all_admitted:
                    positions = None
                    arr_adm = arr
                    ids_adm = ids
                    n_adm = m
                else:
                    positions = np.nonzero(mask)[0]
                    n_adm = int(positions.size)
                    arr_adm = arr[positions]
                    ids_adm = ids[positions]
                if n_adm == 0:
                    # Every arrival in the chunk is shed: no capacity
                    # interaction, the whole chunk commits as drops.
                    dropped += m
                    drop_times.extend(arr.tolist())
                    drop_reasons.extend([REASON_SHED] * m)
                    i = hi
                    chunk_size = min(chunk_size * 2, _CHUNK_MAX)
                    continue
                if hedge is not None:
                    draw_ids = np.repeat(ids_adm, 2)
                    values, events, snapshot = pools.peek(draw_ids)
                    first = values[0::2]
                    backup = values[1::2]
                else:
                    draw_ids = ids_adm
                    values, events, snapshot = pools.peek(ids_adm)
                    first = values
                mults = (
                    timeline.multipliers(arr_adm)
                    if has_slowdowns
                    else np.ones(n_adm)
                )
                effective_first = mults * first
                if hedge is not None:
                    alternative = hedge + mults * backup
                    effective = np.minimum(effective_first, alternative)
                else:
                    effective = effective_first
                comp_opt = arr_adm + effective
                pend_times = np.sort(
                    np.fromiter(
                        (e[0] for e in pending),
                        dtype=np.float64,
                        count=len(pending),
                    )
                )
                dep_pend = np.searchsorted(pend_times, arr_adm, side="left")
                dep_chunk = np.searchsorted(
                    np.sort(comp_opt), arr_adm, side="left"
                )
                n_before = busy + np.arange(n_adm) - dep_pend - dep_chunk
                crossing = np.nonzero(n_before >= cap)[0]
                cut = int(crossing[0]) if crossing.size else n_adm
                # cut >= 1: with busy < cap the first *admitted* arrival
                # always fits, so progress is guaranteed.
                if cut == n_adm:
                    committed = m
                elif positions is None:
                    committed = cut
                else:
                    committed = int(positions[cut])
                pools.commit(
                    draw_ids,
                    2 * cut if hedge is not None else cut,
                    events,
                    snapshot,
                    n_apps,
                )
                state.consume(cut)
                if positions is not None:
                    # Sheds below the committed boundary are final now;
                    # later ones re-run through the serial gate (which
                    # sees the post-spend token balance, as the oracle
                    # does).
                    shed_at = np.nonzero(~mask[:committed])[0]
                    if shed_at.size:
                        dropped += int(shed_at.size)
                        drop_times.extend(arr[shed_at].tolist())
                        drop_reasons.extend([REASON_SHED] * int(shed_at.size))
                for committed_id in np.unique(ids_adm[:cut]):
                    observe_app(app_names[committed_id])
                if hedge is not None:
                    hedges_launched += int(
                        np.count_nonzero(effective_first[:cut] > hedge)
                    )
                    hedge_wins += int(
                        np.count_nonzero(
                            alternative[:cut] < effective_first[:cut]
                        )
                    )
                started = arr_adm[:cut].tolist()
                comps = comp_opt[:cut].tolist()
                base = len(start_comps)
                starts_pre.extend(started)
                start_origs.extend(started)
                start_comps.extend(comps)
                ids_cut = ids_adm[:cut].tolist()
                for offset in range(cut):
                    orig_seq = (
                        i + offset
                        if positions is None
                        else i + int(positions[offset])
                    )
                    start_meta.append((orig_seq, 0, ids_cut[offset]))
                    killed_flags.append(False)
                    seq = base + offset
                    alive.add(seq)
                    pending.append((comps[offset], seq))
                heapify(pending)
                busy += cut
                i += committed
                chunk_size = (
                    min(chunk_size * 2, _CHUNK_MAX)
                    if committed == m
                    else _CHUNK_MIN
                )
            else:
                admit((i, app_ids_list[i], i, 0, t_trace), t_trace)
                i += 1
            continue

        # ---- Injected re-arrival ------------------------------------
        _, _, request = heappop(injected)
        admit(request, t_injected)

    # ---- Series reconstruction --------------------------------------
    comp_all = np.asarray(start_comps)
    orig_all = np.asarray(start_origs)
    meta_ids = np.fromiter(
        (meta[2] for meta in start_meta),
        dtype=np.int64,
        count=len(start_meta),
    )
    keep = ~np.asarray(killed_flags, dtype=bool)
    comp_kept = comp_all[keep] if len(comp_all) else comp_all
    orig_kept = orig_all[keep] if len(orig_all) else orig_all
    ids_kept = meta_ids[keep] if len(meta_ids) else meta_ids
    order = np.lexsort((np.arange(len(comp_kept)), comp_kept))
    completed_times = comp_kept[order]
    latencies = (comp_kept - orig_kept)[order]
    completed_ids = ids_kept[order]

    ticks = sample_tick_times(trace.duration_seconds, sample_interval_seconds)
    starts_pre_arr = np.asarray(starts_pre)
    starts_post_arr = np.asarray(starts_post)
    kills_arr = np.asarray(kill_times)
    busy_series = (
        np.searchsorted(starts_pre_arr, ticks, side="right")
        + np.searchsorted(starts_post_arr, ticks, side="left")
        - np.searchsorted(completed_times, ticks, side="left")
        - np.searchsorted(kills_arr, ticks, side="right")
    )
    queue_depth = (
        np.searchsorted(np.asarray(enq_times), ticks, side="right")
        - np.searchsorted(np.asarray(deq_pre), ticks, side="right")
        - np.searchsorted(np.asarray(deq_post), ticks, side="left")
    )

    return SimulationSeries(
        sample_times=ticks,
        queue_depth=queue_depth,
        busy_instances=busy_series,
        completed_latency_seconds=latencies,
        completed_times=completed_times,
        dropped_requests=dropped,
        total_requests=n,
        dropped_times=np.asarray(drop_times),
        dropped_reasons=np.asarray(drop_reasons, dtype=np.int8),
        retries=retries,
        timeouts=timeouts,
        crash_kills=crash_kills,
        hedges_launched=hedges_launched,
        hedge_wins=hedge_wins,
        live_instances=_live_series(state, ticks),
        completed_app_ids=completed_ids,
        app_catalog=tuple(app_names),
        scale_ups=state.scale_ups,
        scale_downs=state.scale_downs,
    )
