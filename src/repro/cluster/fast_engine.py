"""Vectorized FCFS rack engine: the fast path behind ``RackSimulation.run``.

The event-driven simulator in :mod:`repro.cluster.simulation` fires one
Python closure per arrival, completion, and sample tick.  For FCFS — the
paper's deployed policy — the same dynamics admit an array formulation:

- **Virtual server assignment.**  With ``c`` interchangeable instances and
  FCFS admission, the request that is admitted ``k``-th starts at
  ``max(arrival_k, min(avail))`` where ``avail`` is the multiset of the
  ``c`` earliest server-free times — the classic O(n log c) multi-server
  recurrence.  Queued requests can be assigned to servers the moment they
  are admitted; physical start order equals admission order, so the
  resulting starts, completions, and per-app service-sample indices are
  exactly the oracle's.
- **Busy-period batching.**  Arrivals are processed in adaptively sized
  chunks.  While the system stays below capacity every request starts at
  its own arrival, so a whole chunk reduces to ``completion = arrival +
  service`` plus a ``searchsorted`` occupancy check (pass A).  Congested
  chunks fall back to a tight float-heap kernel (pass B), and near the
  admission limit a serial step (pass C) replays the oracle's
  drop-by-drop bookkeeping cheaply.
- **Series reconstruction.**  Queue-depth and busy-instance series are
  rebuilt per sample tick with ``np.searchsorted`` over the start /
  completion arrays (honouring the event queue's arrival < tick <
  completion tie-break), instead of firing one callback per tick.

Service times consume the simulation RNG in precisely the oracle's order:
pools are drawn lazily per application (initial block at first admission,
doubling on exhaustion), and tentative draws made while sizing a chunk are
rolled back — RNG state and pool contents restored, the committed prefix
replayed — whenever the chunk is cut short by a drop.  The event-driven
path therefore remains the reference oracle, and for FCFS this engine is
bit-identical to it: same drops, same latencies, same series, same RNG
end state.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError, SchedulingError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.simulation import RackSimulation, SimulationSeries
    from repro.cluster.trace import RequestTrace

# Adaptive chunk sizing for the batched passes: grow while chunks commit
# whole, shrink back after a cut so drop bursts do not waste vector work.
_CHUNK_MIN = 512
_CHUNK_MAX = 32_768
# Within this many requests of the admission limit (instances + queue
# depth) the engine steps serially (pass C): drops arrive one by one there
# and chunked passes would be cut to confetti.
_CAPACITY_MARGIN = 64


def sample_tick_times(
    horizon_seconds: float, interval_seconds: float
) -> np.ndarray:
    """Sample-tick times ``interval, 2*interval, ... <= horizon``.

    Computed by scaling an integer range — drift-free, unlike repeatedly
    adding ``interval`` — and shared by both engines so their
    ``sample_times`` series are identical.
    """
    if interval_seconds <= 0:
        raise ConfigurationError(
            f"non-positive sample interval: {interval_seconds}"
        )
    if horizon_seconds < interval_seconds:
        return np.empty(0)
    count = int(np.floor(horizon_seconds / interval_seconds))
    # Guard the boundary against float rounding in the division.
    while count * interval_seconds > horizon_seconds:
        count -= 1
    while (count + 1) * interval_seconds <= horizon_seconds:
        count += 1
    return np.arange(1, count + 1, dtype=np.float64) * interval_seconds


class _ServicePools:
    """Chunk-granular view of the oracle's per-app service-sample pools.

    Operates directly on the owning :class:`RackSimulation`'s pool dicts
    (``_service_samples`` / ``_service_cursor``) so that single draws via
    ``RackSimulation._service_time`` and batched draws interleave exactly
    like the oracle's, and the post-run pool state matches bit for bit.
    """

    def __init__(self, sim: "RackSimulation", app_names: List[str]) -> None:
        self._sim = sim
        self._app_names = app_names

    def _pool_len(self, name: str) -> int:
        """Logical pool length: trimmed + physical + pending samples."""
        pool = self._sim._service_samples.get(name)
        if pool is None:
            return 0
        return (
            self._sim._service_trim.get(name, 0)
            + len(pool)
            + self._sim._pool_pending(name)
        )

    def _grow(self, name: str, size: int) -> None:
        """One oracle-order draw: initial block or doubling block."""
        sim = self._sim
        fresh = sim._pool_grow_block(name, size)
        pool = sim._service_samples.get(name)
        if pool is None:
            sim._service_samples[name] = fresh
            sim._service_cursor.setdefault(name, 0)
        else:
            sim._service_samples[name] = np.concatenate([pool, fresh])

    def peek(
        self, app_ids: np.ndarray
    ) -> Tuple[np.ndarray, List[Tuple[int, int, int]], object]:
        """Service times for a chunk, assuming every request is admitted.

        Returns ``(values, grow_events, snapshot)``.  ``grow_events`` are
        ``(chunk_position, app_id, draw_size)`` in the order the oracle
        would perform the draws; ``snapshot`` restores RNG and pool state
        if the caller commits only a prefix of the chunk.
        """
        from repro.cluster.simulation import (
            _POOL_BLOCK_MAX,
            _PRESAMPLE_COUNT,
        )

        sim = self._sim
        values = np.empty(len(app_ids))
        events: List[Tuple[int, int, int]] = []
        positions: Dict[int, np.ndarray] = {}
        for app_id in np.unique(app_ids):
            app_id = int(app_id)
            name = self._app_names[app_id]
            pos = np.nonzero(app_ids == app_id)[0]
            positions[app_id] = pos
            cursor = sim._service_cursor.get(name, 0)
            length = self._pool_len(name)
            while length < cursor + len(pos):
                if length > 0:
                    size = min(length, _POOL_BLOCK_MAX)
                else:
                    size = _PRESAMPLE_COUNT
                events.append((int(pos[length - cursor]), app_id, size))
                length += size
        snapshot = None
        if events:
            events.sort()
            snapshot = (
                sim._rng.bit_generator.state,
                {
                    self._app_names[app_id]: self._pool_state(
                        self._app_names[app_id]
                    )
                    for _, app_id, _ in events
                },
            )
            for _, app_id, size in events:
                self._grow(self._app_names[app_id], size)
        for app_id, pos in positions.items():
            name = self._app_names[app_id]
            offset = sim._service_cursor.get(name, 0) - sim._service_trim.get(
                name, 0
            )
            need = offset + len(pos)
            pool = sim._service_samples[name]
            while len(pool) < need:
                # Bounded-pool mode: part of the range is still pending;
                # re-materialize it window by window.
                pool = np.concatenate([pool, sim._pool_refill(name)])
                sim._service_samples[name] = pool
            values[pos] = pool[offset:need]
        return values, events, snapshot

    def _pool_state(self, name: str):
        """Restorable (physical pool, pending blocks) pair for ``name``."""
        sim = self._sim
        pending = sim._service_pending.get(name)
        return (
            sim._service_samples.get(name),
            None if pending is None else [list(block) for block in pending],
        )

    def commit(
        self,
        app_ids: np.ndarray,
        committed: int,
        events: List[Tuple[int, int, int]],
        snapshot: object,
        n_apps: int,
    ) -> None:
        """Advance cursors for the committed prefix; roll back the rest.

        If any tentative growth draw belonged to a request beyond the
        committed prefix, RNG and pool state are restored from
        ``snapshot`` and only the in-prefix draws are replayed — in the
        same order, from the same RNG states, hence with the same values.
        """
        sim = self._sim
        if snapshot is not None and any(
            pos >= committed for pos, _, _ in events
        ):
            rng_state, pools = snapshot
            sim._rng.bit_generator.state = rng_state
            for name, (pool, pending) in pools.items():
                if pool is None:
                    sim._service_samples.pop(name, None)
                else:
                    sim._service_samples[name] = pool
                if pending is None:
                    sim._service_pending.pop(name, None)
                else:
                    sim._service_pending[name] = [
                        list(block) for block in pending
                    ]
            for pos, app_id, size in events:
                if pos < committed:
                    self._grow(self._app_names[app_id], size)
        if committed:
            counts = np.bincount(app_ids[:committed], minlength=n_apps)
            for app_id in np.nonzero(counts)[0]:
                name = self._app_names[int(app_id)]
                sim._service_cursor[name] = sim._service_cursor.get(
                    name, 0
                ) + int(counts[app_id])

    def compact(self) -> None:
        """Physically drop consumed pool prefixes (streaming engines).

        Cursors stay logical and ``_service_trim`` records the discarded
        count, so the doubling growth schedule — and hence every future
        RNG draw — is unchanged; only peak memory shrinks.  Must not be
        called between :meth:`peek` and :meth:`commit` (the snapshot
        holds physical arrays at the current trim).
        """
        sim = self._sim
        for name, pool in sim._service_samples.items():
            trim = sim._service_trim.get(name, 0)
            consumed = sim._service_cursor.get(name, 0) - trim
            # Compact only when the copy (surviving tail) is no larger
            # than what it frees, keeping total copy work amortized
            # linear in the number of draws.
            if consumed >= 1024 and consumed >= len(pool) - consumed:
                sim._service_samples[name] = pool[consumed:].copy()
                sim._service_trim[name] = trim + consumed


def run_vectorized(
    sim: "RackSimulation",
    trace: "RequestTrace",
    sample_interval_seconds: float,
) -> "SimulationSeries":
    """Simulate ``trace`` under FCFS with the vectorized engine."""
    from repro.cluster.simulation import SimulationSeries

    arrivals = np.asarray(trace.arrival_seconds, dtype=np.float64)
    n = len(arrivals)
    if n and float(arrivals[0]) < 0:
        raise SimulationError(
            f"event scheduled at negative time {float(arrivals[0])}"
        )
    c = sim._max_instances
    qmax = sim._queue_depth
    capacity = c + qmax
    serial_threshold = max(c, capacity - _CAPACITY_MARGIN)

    app_names = list(dict.fromkeys(trace.app_names))
    name_to_id = {name: i for i, name in enumerate(app_names)}
    n_apps = len(app_names)
    app_ids = np.fromiter(
        (name_to_id[name] for name in trace.app_names),
        dtype=np.intp,
        count=n,
    )
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)

    start_times = np.empty(n)
    completion_times = np.empty(n)
    admitted = np.zeros(n, dtype=bool)
    dropped = 0
    drop_times: List[float] = []

    avail: List[float] = [0.0] * c  # heap of server-free times
    pending: List[float] = []  # heap of in-system completion times
    admitted_count = 0
    departed_count = 0
    arrivals_list = arrivals.tolist()

    i = 0
    chunk_size = _CHUNK_MIN
    while i < n:
        now = arrivals_list[i]
        while pending and pending[0] < now:
            heapq.heappop(pending)
            departed_count += 1
        in_system = admitted_count - departed_count

        # ---- Pass C: serial steps near the admission limit ----------
        if in_system >= serial_threshold:
            if in_system >= capacity:
                dropped += 1  # busy == c and the queue is full
                drop_times.append(now)
                i += 1
                continue
            service = sim._service_time(app_names[app_ids[i]])
            free = avail[0]
            start = now if now > free else free
            completion = start + service
            heapq.heapreplace(avail, completion)
            heapq.heappush(pending, completion)
            start_times[i] = start
            completion_times[i] = completion
            admitted[i] = True
            admitted_count += 1
            i += 1
            continue

        # ---- Chunked passes -----------------------------------------
        hi = min(n, i + chunk_size)
        unknown = np.nonzero(~known[app_ids[i:hi]])[0]
        if unknown.size:
            if unknown[0] == 0:
                # The queue has room, so the oracle would admit this
                # request, draw its service time, and fail.
                raise SchedulingError(
                    f"unknown application {app_names[app_ids[i]]!r}"
                )
            hi = i + int(unknown[0])
        chunk = slice(i, hi)
        m = hi - i
        arr = arrivals[chunk]
        values, events, snapshot = pools.peek(app_ids[chunk])
        pend_sorted = np.sort(np.asarray(pending))
        dep_pend = np.searchsorted(pend_sorted, arr, side="left")
        offsets = np.arange(m)

        committed = -1  # sentinel: chunk not resolved yet
        drop_after = False
        avail_is_final = False

        # ---- Pass A: contention-free chunk (all starts immediate) ---
        if in_system < c:
            comp_opt = arr + values
            dep_chunk = np.searchsorted(np.sort(comp_opt), arr, side="left")
            n_before = in_system + offsets - dep_pend - dep_chunk
            crossing = np.nonzero(n_before >= c)[0]
            cut = int(crossing[0]) if crossing.size else m
            if cut > 0:
                committed = cut
                starts_arr = arr[:cut]
                comps_arr = comp_opt[:cut]

        # ---- Pass B: heap kernel with drop detection ----------------
        if committed < 0:
            heap = avail[:]
            starts_l: List[float] = []
            comps_l: List[float] = []
            append_start = starts_l.append
            append_comp = comps_l.append
            heapreplace = heapq.heapreplace
            for arrival_t, service_t in zip(
                arrivals_list[i:hi], values.tolist()
            ):
                free = heap[0]
                start = arrival_t if arrival_t > free else free
                append_start(start)
                completion = start + service_t
                append_comp(completion)
                heapreplace(heap, completion)
            comps_b = np.asarray(comps_l)
            dep_chunk = np.searchsorted(np.sort(comps_b), arr, side="left")
            n_before = in_system + offsets - dep_pend - dep_chunk
            over = np.nonzero(n_before >= capacity)[0]
            if over.size:
                committed = int(over[0])  # first over-capacity arrival
                drop_after = True
            else:
                committed = m
                avail = heap  # final server state, already a heap
                avail_is_final = True
            starts_arr = np.asarray(starts_l[:committed])
            comps_arr = comps_b[:committed]

        # ---- Commit the resolved prefix -----------------------------
        pools.commit(app_ids[chunk], committed, events, snapshot, n_apps)
        if committed:
            committed_slice = slice(i, i + committed)
            start_times[committed_slice] = starts_arr
            completion_times[committed_slice] = comps_arr
            admitted[committed_slice] = True
            admitted_count += committed
            pending.extend(comps_arr.tolist())
            heapq.heapify(pending)
            if not avail_is_final:
                # The c server free-times are always the c largest
                # completions seen so far (pop-min/push-completion keeps
                # exactly that invariant), so the heap can be rebuilt
                # from the committed prefix without replaying it.
                merged = np.concatenate([np.asarray(avail), comps_arr])
                avail = np.partition(merged, -c)[-c:].tolist()
                heapq.heapify(avail)
        i += committed
        if drop_after:
            dropped += 1
            drop_times.append(arrivals_list[i])
            i += 1
        if committed == m:
            chunk_size = min(chunk_size * 2, _CHUNK_MAX)
        else:
            chunk_size = _CHUNK_MIN

    # ---- Series reconstruction --------------------------------------
    adm = np.nonzero(admitted)[0]
    arr_adm = arrivals[adm]
    start_adm = start_times[adm]
    comp_adm = completion_times[adm]
    # Completion events fire in (time, push order) order; pushes happen
    # in admission order, so ties resolve by admission index.
    order = np.lexsort((np.arange(len(adm)), comp_adm))
    completed_times = comp_adm[order]
    latencies = (comp_adm - arr_adm)[order]

    ticks = sample_tick_times(trace.duration_seconds, sample_interval_seconds)
    immediate = start_adm <= arr_adm
    imm_arrivals = arr_adm[immediate]
    queued_arrivals = arr_adm[~immediate]
    queued_starts = start_adm[~immediate]
    # Same-timestamp event order is arrival < sample tick < completion:
    # arrivals (and with them immediate starts) at exactly a tick are
    # visible to it, queue pops and completions at exactly a tick are not.
    busy = (
        np.searchsorted(imm_arrivals, ticks, side="right")
        + np.searchsorted(queued_starts, ticks, side="left")
        - np.searchsorted(completed_times, ticks, side="left")
    )
    queue_depth = np.searchsorted(
        queued_arrivals, ticks, side="right"
    ) - np.searchsorted(queued_starts, ticks, side="left")

    return SimulationSeries(
        sample_times=ticks,
        queue_depth=queue_depth,
        busy_instances=busy,
        completed_latency_seconds=latencies,
        completed_times=completed_times,
        dropped_requests=dropped,
        total_requests=n,
        dropped_times=np.asarray(drop_times),
        dropped_reasons=np.zeros(len(drop_times), dtype=np.int8),
    )
