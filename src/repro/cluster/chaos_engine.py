"""Fault-injection engines for the rack simulator (oracle + vectorized).

Both engines simulate the same perturbed dynamics: a
:class:`~repro.cluster.faults.FaultTimeline` steps fleet capacity up and
down (crashes kill the in-flight requests with the latest completions
and shrink capacity; recoveries dispatch the backlog), slowdown windows
scale service times, and a :class:`~repro.cluster.faults.RetryPolicy`
times out queued requests, re-injects failed attempts with backoff, and
hedges started requests with a backup copy.

Same-timestamp events follow a strict rank order, extending the base
simulator's ``arrival < tick < completion`` rule:

    fault < timeout < arrival (trace before injected) < tick < completion

with completions tie-broken by start order, exactly as the event queue's
insertion order resolves them in the fault-free oracle.  Shared
semantics, implemented twice:

- :func:`run_chaos_event` — the reference oracle: one explicit
  ``(time, rank, counter)`` heap, a
  :class:`~repro.cluster.policy_keys.KeyedQueue` with cancellation for
  timed-out entries, one handler per event kind.
- :func:`run_chaos_vectorized` — a next-event loop over five primitive
  event sources (trace arrivals, injected re-arrivals, timeout timers,
  fault events, completions).  Fault events partition the timeline into
  capacity epochs; within an epoch, contention-free stretches run
  through the same adaptively chunked pass A as the fault-free engines
  (``completion = arrival + service``, ``searchsorted`` occupancy
  checks, tentative-draw RNG rollback via
  :class:`~repro.cluster.fast_engine._ServicePools`), and congested
  stretches step serially through the keyed-dispatch kernel.

Failure handling is crash-only and loss-free in accounting terms: every
trace request ends as exactly one completion or one reasoned drop
(``queue_full`` / ``timeout`` / ``crashed``), which
``tests/test_fault_property.py`` asserts for every engine and seed.
``tests/test_fault_equivalence.py`` proves the two implementations
bit-identical — series, per-reason drops, chaos counters, RNG end
state — and that a zero-fault timeline reproduces the fault-free
engines exactly.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

import numpy as np

from repro.cluster.fast_engine import (
    _CHUNK_MAX,
    _CHUNK_MIN,
    _ServicePools,
    sample_tick_times,
)
from repro.cluster.faults import (
    REASON_CRASHED,
    REASON_QUEUE_FULL,
    REASON_TIMEOUT,
    FaultTimeline,
    RetryPolicy,
)
from repro.cluster.policy_keys import KeyedQueue
from repro.errors import SchedulingError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.schedulers import KeyedPolicy
    from repro.cluster.simulation import RackSimulation, SimulationSeries
    from repro.cluster.trace import RequestTrace

_INF = float("inf")

# Same-timestamp event ranks (see module docstring).
_RANK_FAULT = 0
_RANK_TIMER = 1
_RANK_ARRIVAL = 2
_RANK_TICK = 3
_RANK_COMPLETION = 4


def run_chaos_event(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    trace: "RequestTrace",
    sample_interval_seconds: float,
    timeline: FaultTimeline,
    retry: RetryPolicy,
) -> "SimulationSeries":
    """The fault-injection reference oracle (explicit ranked event heap).

    Requests are ``(qseq, orig_seq, attempt, app_name, orig_arrival)``
    tuples: ``qseq`` is the admission sequence the policy key tie-breaks
    on (trace index for first attempts, ``n + retry#`` for re-arrivals,
    so retries never jump ahead of equal-key originals), ``orig_seq``
    indexes the trace request (and the jitter hash), and latency is
    always measured from ``orig_arrival``.
    """
    from repro.cluster.simulation import SimulationSeries

    n = len(trace)
    if n and float(trace.arrival_seconds[0]) < 0:
        raise SimulationError(
            f"event scheduled at negative time {float(trace.arrival_seconds[0])}"
        )
    cap = timeline.initial_capacity
    qmax = sim._queue_depth
    timeout = retry.timeout_seconds
    hedge = retry.hedge_after_seconds
    max_retries = retry.max_retries
    multiplier_at = timeline.multiplier_at
    observe_app = policy.observe_app
    key_for = policy.key.key_for
    service_time = sim._service_time

    # (time, rank, counter, kind, payload); counter is global push order,
    # so equal-(time, rank) events fire in push order — trace arrivals
    # before injected re-arrivals, completions in start order.
    events: List[tuple] = []
    counter = count()

    queue = KeyedQueue()
    queued: Set[int] = set()  # qseqs live in the queue
    handles: Dict[int, object] = {}
    in_flight: Dict[int, tuple] = {}  # start_seq -> (completion, request)
    killed: Set[int] = set()
    busy = 0
    start_counter = 0
    retry_counter = 0

    dropped = 0
    drop_times: List[float] = []
    drop_reasons: List[int] = []
    latencies: List[float] = []
    completion_times: List[float] = []
    sample_times: List[float] = []
    queue_series: List[int] = []
    busy_series: List[int] = []
    retries = timeouts = crash_kills = 0
    hedges_launched = hedge_wins = 0

    def start_service(request: tuple, now: float) -> None:
        nonlocal busy, start_counter, hedges_launched, hedge_wins
        app_name = request[3]
        sample = service_time(app_name)
        mult = multiplier_at(now)
        effective = mult * sample
        if hedge is not None:
            backup = service_time(app_name)
            alternative = hedge + mult * backup
            if effective > hedge:
                hedges_launched += 1
            if alternative < effective:
                hedge_wins += 1
                effective = alternative
        done = now + effective
        seq = start_counter
        start_counter += 1
        in_flight[seq] = (done, request)
        busy += 1
        heappush(
            events, (done, _RANK_COMPLETION, next(counter), _on_completion, seq)
        )

    def fail(request: tuple, reason: int, now: float) -> None:
        nonlocal dropped, retries, retry_counter
        if request[2] < max_retries:
            retries += 1
            delay = retry.backoff_seconds(request[1], request[2])
            reattempt = (
                n + retry_counter,
                request[1],
                request[2] + 1,
                request[3],
                request[4],
            )
            retry_counter += 1
            heappush(
                events,
                (now + delay, _RANK_ARRIVAL, next(counter), _on_arrival, reattempt),
            )
        else:
            dropped += 1
            drop_times.append(now)
            drop_reasons.append(reason)

    def dispatch(now: float) -> None:
        request = queue.pop()
        queued.discard(request[0])
        start_service(request, now)

    def _on_arrival(request: tuple, now: float) -> None:
        if busy < cap:
            observe_app(request[3])
            start_service(request, now)
        elif len(queue) < qmax:
            observe_app(request[3])
            qseq = request[0]
            handles[qseq] = queue.push((*key_for(request[3]), qseq), request)
            queued.add(qseq)
            if timeout is not None:
                heappush(
                    events,
                    (now + timeout, _RANK_TIMER, next(counter), _on_timer, request),
                )
        else:
            fail(request, REASON_QUEUE_FULL, now)

    def _on_timer(request: tuple, now: float) -> None:
        nonlocal timeouts
        qseq = request[0]
        if qseq not in queued:
            return  # already served (or failed); stale timer is a no-op
        queue.cancel(handles.pop(qseq))
        queued.discard(qseq)
        timeouts += 1
        fail(request, REASON_TIMEOUT, now)

    def _on_fault(new_cap: int, now: float) -> None:
        nonlocal cap, busy, crash_kills
        if new_cap < busy:
            # Kill the in-flight requests that would finish last,
            # largest (completion, start order) first — a deterministic
            # choice both engines make identically.
            victims = sorted(
                (done, seq) for seq, (done, _) in in_flight.items()
            )[new_cap - busy:]
            for _, seq in reversed(victims):
                _, request = in_flight.pop(seq)
                killed.add(seq)
                busy -= 1
                crash_kills += 1
                fail(request, REASON_CRASHED, now)
        cap = new_cap
        while busy < cap and len(queue):
            dispatch(now)

    def _on_completion(seq: int, now: float) -> None:
        nonlocal busy
        if seq in killed:
            killed.discard(seq)
            return
        _, request = in_flight.pop(seq)
        busy -= 1
        latencies.append(now - request[4])
        completion_times.append(now)
        if len(queue) and busy < cap:
            dispatch(now)

    def _on_sample(_: object, now: float) -> None:
        sample_times.append(now)
        queue_series.append(len(queue))
        busy_series.append(busy)

    for sequence, (arrival, app_name) in enumerate(
        zip(trace.arrival_seconds, trace.app_names)
    ):
        arrival = float(arrival)
        request = (sequence, sequence, 0, app_name, arrival)
        heappush(
            events, (arrival, _RANK_ARRIVAL, next(counter), _on_arrival, request)
        )
    for t, capacity in zip(
        timeline.times.tolist(), timeline.capacities.tolist()
    ):
        heappush(events, (t, _RANK_FAULT, next(counter), _on_fault, int(capacity)))
    ticks = sample_tick_times(trace.duration_seconds, sample_interval_seconds)
    for tick in ticks.tolist():
        heappush(events, (tick, _RANK_TICK, next(counter), _on_sample, None))

    while events:
        when, _, _, handler, payload = heappop(events)
        handler(payload, when)

    return SimulationSeries(
        sample_times=ticks,
        queue_depth=np.array(queue_series),
        busy_instances=np.array(busy_series),
        completed_latency_seconds=np.array(latencies),
        completed_times=np.array(completion_times),
        dropped_requests=dropped,
        total_requests=n,
        dropped_times=np.array(drop_times),
        dropped_reasons=np.array(drop_reasons, dtype=np.int8),
        retries=retries,
        timeouts=timeouts,
        crash_kills=crash_kills,
        hedges_launched=hedges_launched,
        hedge_wins=hedge_wins,
    )


def run_chaos_vectorized(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    trace: "RequestTrace",
    sample_interval_seconds: float,
    timeline: FaultTimeline,
    retry: RetryPolicy,
) -> "SimulationSeries":
    """Chaos engine with pass-A chunking inside capacity epochs.

    A next-event loop over five sources (faults, timers, trace arrivals,
    injected re-arrivals, completions), ordered by the module's rank
    rule.  Whenever the next event is a trace arrival with an empty
    queue and fleet headroom, a whole contention-free chunk is processed
    at once — cut at the first arrival that would queue, at the next
    fault event, and at the next injected re-arrival — with tentative
    service draws rolled back exactly as in the fault-free engines.
    Bit-identical to :func:`run_chaos_event`.
    """
    from repro.cluster.simulation import SimulationSeries

    arrivals = np.asarray(trace.arrival_seconds, dtype=np.float64)
    n = len(arrivals)
    if n and float(arrivals[0]) < 0:
        raise SimulationError(
            f"event scheduled at negative time {float(arrivals[0])}"
        )
    cap = timeline.initial_capacity
    qmax = sim._queue_depth
    timeout = retry.timeout_seconds
    hedge = retry.hedge_after_seconds
    max_retries = retry.max_retries
    multiplier_at = timeline.multiplier_at
    observe_app = policy.observe_app
    service_time = sim._service_time

    app_names = list(dict.fromkeys(trace.app_names))
    name_to_id = {name: i for i, name in enumerate(app_names)}
    n_apps = len(app_names)
    app_ids = np.fromiter(
        (name_to_id[name] for name in trace.app_names), dtype=np.intp, count=n
    )
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)
    prefixes = [policy.key.key_for(name) for name in app_names]

    fault_times = timeline.times.tolist()
    fault_caps = timeline.capacities.tolist()
    n_faults = len(fault_times)
    has_slowdowns = len(timeline.slow_starts) > 0

    # Queue entries: ``prefix + request`` where a request is the tuple
    # ``(qseq, app_id, orig_seq, attempt, orig_arrival)``.  ``qseq`` is
    # unique, so heap sifts never compare past it.
    qheap: List[tuple] = []
    queued: Set[int] = set()
    timers: List[tuple] = []  # (deadline, push order, request)
    injected: List[tuple] = []  # (time, push order, request)
    pending: List[Tuple[float, int]] = []  # (completion, start_seq), live only
    timer_counter = count()
    injected_counter = count()
    busy = 0
    retry_counter = 0

    # Per-start logs, indexed by start sequence.
    start_origs: List[float] = []
    start_comps: List[float] = []
    start_meta: List[Tuple[int, int, int]] = []  # (orig_seq, attempt, app_id)
    killed_flags: List[bool] = []
    alive: Set[int] = set()

    # Series-reconstruction event logs, each appended in event order and
    # therefore time-sorted.  ``pre`` logs hold events ranked before the
    # sample tick (visible at an equal-time tick), ``post`` logs events
    # ranked after it.
    starts_pre: List[float] = []
    starts_post: List[float] = []
    enq_times: List[float] = []
    deq_pre: List[float] = []
    deq_post: List[float] = []
    kill_times: List[float] = []

    dropped = 0
    drop_times: List[float] = []
    drop_reasons: List[int] = []
    retries = timeouts = crash_kills = 0
    hedges_launched = hedge_wins = 0

    def start(
        app_id: int,
        now: float,
        orig_arrival: float,
        orig_seq: int,
        attempt: int,
        pre_tick: bool,
    ) -> None:
        nonlocal busy, hedges_launched, hedge_wins
        sample = service_time(app_names[app_id])
        mult = multiplier_at(now)
        effective = mult * sample
        if hedge is not None:
            backup = service_time(app_names[app_id])
            alternative = hedge + mult * backup
            if effective > hedge:
                hedges_launched += 1
            if alternative < effective:
                hedge_wins += 1
                effective = alternative
        done = now + effective
        seq = len(start_comps)
        start_origs.append(orig_arrival)
        start_comps.append(done)
        start_meta.append((orig_seq, attempt, app_id))
        killed_flags.append(False)
        alive.add(seq)
        heappush(pending, (done, seq))
        busy += 1
        (starts_pre if pre_tick else starts_post).append(now)

    def fail(
        app_id: int, orig_seq: int, attempt: int, orig_arrival: float,
        reason: int, now: float,
    ) -> None:
        nonlocal dropped, retries, retry_counter
        if attempt < max_retries:
            retries += 1
            delay = retry.backoff_seconds(orig_seq, attempt)
            reattempt = (
                n + retry_counter, app_id, orig_seq, attempt + 1, orig_arrival
            )
            retry_counter += 1
            heappush(
                injected, (now + delay, next(injected_counter), reattempt)
            )
        else:
            dropped += 1
            drop_times.append(now)
            drop_reasons.append(reason)

    def dispatch(now: float, pre_tick: bool) -> None:
        while True:
            entry = heappop(qheap)
            request = entry[-5:]
            if request[0] in queued:
                break
        queued.discard(request[0])
        (deq_pre if pre_tick else deq_post).append(now)
        start(request[1], now, request[4], request[2], request[3], pre_tick)

    def admit(request: tuple, now: float) -> None:
        qseq, app_id, orig_seq, attempt, orig_arrival = request
        if busy < cap:
            observe_app(app_names[app_id])
            start(app_id, now, orig_arrival, orig_seq, attempt, True)
        elif len(queued) < qmax:
            observe_app(app_names[app_id])
            heappush(qheap, prefixes[app_id] + request)
            queued.add(qseq)
            enq_times.append(now)
            if timeout is not None:
                heappush(timers, (now + timeout, next(timer_counter), request))
        else:
            fail(app_id, orig_seq, attempt, orig_arrival, REASON_QUEUE_FULL, now)

    i = 0
    k = 0
    chunk_size = _CHUNK_MIN
    arrivals_list = arrivals.tolist()
    app_ids_list = app_ids.tolist()
    while True:
        # Timers whose entries were served (or already failed) are dead;
        # with an empty queue every timer is.
        if not queued:
            if timers:
                timers.clear()
        else:
            while timers and timers[0][2][0] not in queued:
                heappop(timers)

        t_fault = fault_times[k] if k < n_faults else _INF
        t_timer = timers[0][0] if timers else _INF
        t_trace = arrivals_list[i] if i < n else _INF
        t_injected = injected[0][0] if injected else _INF
        t_next = min(t_fault, t_timer, t_trace, t_injected)

        # Completions strictly before the next ranked event fire first
        # (equal timestamps fire after: completion has the last rank),
        # each freeing a server for the current min-key queued request.
        while pending and pending[0][0] < t_next:
            done, seq = heappop(pending)
            busy -= 1
            alive.discard(seq)
            if queued and busy < cap:
                dispatch(done, False)
        if t_next == _INF:
            break

        # ---- Fault event: capacity step -----------------------------
        if t_fault == t_next:
            new_cap = int(fault_caps[k])
            k += 1
            if new_cap < busy:
                shortfall = busy - new_cap
                victims = sorted((start_comps[s], s) for s in alive)[
                    -shortfall:
                ]
                doomed = {seq for _, seq in victims}
                for _, seq in reversed(victims):
                    alive.discard(seq)
                    killed_flags[seq] = True
                    busy -= 1
                    crash_kills += 1
                    kill_times.append(t_fault)
                    orig_seq, attempt, app_id = start_meta[seq]
                    fail(
                        app_id, orig_seq, attempt, start_origs[seq],
                        REASON_CRASHED, t_fault,
                    )
                pending = [e for e in pending if e[1] not in doomed]
                heapify(pending)
            cap = new_cap
            while queued and busy < cap:
                dispatch(t_fault, True)
            continue

        # ---- Timeout timer ------------------------------------------
        if t_timer == t_next:
            _, _, request = heappop(timers)
            if request[0] in queued:  # may have been served by the drain
                queued.discard(request[0])
                deq_pre.append(t_timer)
                timeouts += 1
                fail(
                    request[1], request[2], request[3], request[4],
                    REASON_TIMEOUT, t_timer,
                )
            continue

        # ---- Trace arrival (before an injected one at the same time) -
        if t_trace == t_next and t_trace <= t_injected:
            if not queued and busy < cap:
                # Pass A: contention-free chunk, cut at the next fault
                # (rank before arrivals: equal-time arrivals excluded)
                # and the next injected re-arrival (rank after trace
                # arrivals: equal-time trace arrivals included).
                hi = min(n, i + chunk_size)
                if k < n_faults:
                    hi = i + int(
                        np.searchsorted(arrivals[i:hi], t_fault, side="left")
                    )
                if injected:
                    hi = i + int(
                        np.searchsorted(arrivals[i:hi], t_injected, side="right")
                    )
                unknown = np.nonzero(~known[app_ids[i:hi]])[0]
                if unknown.size:
                    if unknown[0] == 0:
                        raise SchedulingError(
                            f"unknown application {app_names[app_ids[i]]!r}"
                        )
                    hi = i + int(unknown[0])
                chunk = slice(i, hi)
                m = hi - i
                arr = arrivals[chunk]
                ids = app_ids[chunk]
                if hedge is not None:
                    draw_ids = np.repeat(ids, 2)
                    values, events, snapshot = pools.peek(draw_ids)
                    first = values[0::2]
                    backup = values[1::2]
                else:
                    draw_ids = ids
                    values, events, snapshot = pools.peek(ids)
                    first = values
                mults = (
                    timeline.multipliers(arr)
                    if has_slowdowns
                    else np.ones(m)
                )
                effective_first = mults * first
                if hedge is not None:
                    alternative = hedge + mults * backup
                    effective = np.minimum(effective_first, alternative)
                else:
                    effective = effective_first
                comp_opt = arr + effective
                pend_times = np.sort(
                    np.fromiter(
                        (e[0] for e in pending),
                        dtype=np.float64,
                        count=len(pending),
                    )
                )
                dep_pend = np.searchsorted(pend_times, arr, side="left")
                dep_chunk = np.searchsorted(
                    np.sort(comp_opt), arr, side="left"
                )
                n_before = busy + np.arange(m) - dep_pend - dep_chunk
                crossing = np.nonzero(n_before >= cap)[0]
                cut = int(crossing[0]) if crossing.size else m
                pools.commit(
                    draw_ids,
                    2 * cut if hedge is not None else cut,
                    events,
                    snapshot,
                    n_apps,
                )
                # cut >= 1: with busy < cap the first arrival always
                # fits.  Observation is coalesced per app per chunk
                # (the documented set-like contract).
                for committed_id in np.unique(ids[:cut]):
                    observe_app(app_names[committed_id])
                if hedge is not None:
                    hedges_launched += int(
                        np.count_nonzero(effective_first[:cut] > hedge)
                    )
                    hedge_wins += int(
                        np.count_nonzero(
                            alternative[:cut] < effective_first[:cut]
                        )
                    )
                started = arr[:cut].tolist()
                comps = comp_opt[:cut].tolist()
                base = len(start_comps)
                starts_pre.extend(started)
                start_origs.extend(started)
                start_comps.extend(comps)
                ids_cut = ids[:cut].tolist()
                for offset in range(cut):
                    start_meta.append((i + offset, 0, ids_cut[offset]))
                    killed_flags.append(False)
                    seq = base + offset
                    alive.add(seq)
                    pending.append((comps[offset], seq))
                heapify(pending)
                busy += cut
                i += cut
                chunk_size = (
                    min(chunk_size * 2, _CHUNK_MAX)
                    if cut == m
                    else _CHUNK_MIN
                )
            else:
                admit((i, app_ids_list[i], i, 0, t_trace), t_trace)
                i += 1
            continue

        # ---- Injected re-arrival ------------------------------------
        _, _, request = heappop(injected)
        admit(request, t_injected)

    # ---- Series reconstruction --------------------------------------
    comp_all = np.asarray(start_comps)
    orig_all = np.asarray(start_origs)
    keep = ~np.asarray(killed_flags, dtype=bool)
    comp_kept = comp_all[keep] if len(comp_all) else comp_all
    orig_kept = orig_all[keep] if len(orig_all) else orig_all
    # Completion events fire in (time, start order); the kept arrays are
    # already in start order, so a stable lexsort reproduces it.
    order = np.lexsort((np.arange(len(comp_kept)), comp_kept))
    completed_times = comp_kept[order]
    latencies = (comp_kept - orig_kept)[order]

    ticks = sample_tick_times(trace.duration_seconds, sample_interval_seconds)
    starts_pre_arr = np.asarray(starts_pre)
    starts_post_arr = np.asarray(starts_post)
    kills_arr = np.asarray(kill_times)
    busy_series = (
        np.searchsorted(starts_pre_arr, ticks, side="right")
        + np.searchsorted(starts_post_arr, ticks, side="left")
        - np.searchsorted(completed_times, ticks, side="left")
        - np.searchsorted(kills_arr, ticks, side="right")
    )
    queue_depth = (
        np.searchsorted(np.asarray(enq_times), ticks, side="right")
        - np.searchsorted(np.asarray(deq_pre), ticks, side="right")
        - np.searchsorted(np.asarray(deq_post), ticks, side="left")
    )

    return SimulationSeries(
        sample_times=ticks,
        queue_depth=queue_depth,
        busy_instances=busy_series,
        completed_latency_seconds=latencies,
        completed_times=completed_times,
        dropped_requests=dropped,
        total_requests=n,
        dropped_times=np.asarray(drop_times),
        dropped_reasons=np.asarray(drop_reasons, dtype=np.int8),
        retries=retries,
        timeouts=timeouts,
        crash_kills=crash_kills,
        hedges_launched=hedges_launched,
        hedge_wins=hedge_wins,
    )
