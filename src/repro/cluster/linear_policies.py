"""FROZEN: the pre-priority-key scheduling policies, kept as oracles.

These are the imperative policy implementations the priority-key
refactor (``cluster/policy_keys.py`` / ``cluster/schedulers.py``)
retired: an append-only list with a linear ``min`` + ``list.remove``
pop — O(queue) per dispatch, quadratic under saturation.  They are kept
**verbatim** as reference oracles:

- ``tests/test_policy_property.py`` replays randomized push/pop streams
  through them and the heap-backed policies, asserting identical pop
  order; and
- ``scripts/bench_policy.py`` times one of them against the keyed
  engines to document what the refactor retired (``BENCH_policy.json``).

Do not modernise, optimise, or otherwise change the behaviour of this
module — its whole value is staying exactly what the seed shipped.  New
policies belong in :mod:`repro.cluster.policy_keys`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.schedulers import QueuedRequest
from repro.errors import SchedulingError
from repro.serverless.application import Application


class LinearFCFSPolicy:
    """First-come-first-serve over a plain deque-less list."""

    def __init__(self) -> None:
        self._queue: List[QueuedRequest] = []

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty FCFS queue")
        return self._queue.pop(0)

    def __len__(self) -> int:
        return len(self._queue)


class LinearShortestJobFirstPolicy:
    """SJF with a linear ``min`` + ``list.remove`` pop."""

    def __init__(self, service_estimates: Dict[str, float]) -> None:
        if not service_estimates:
            raise SchedulingError("SJF needs at least one service estimate")
        for app, estimate in service_estimates.items():
            if estimate <= 0:
                raise SchedulingError(
                    f"non-positive service estimate for {app!r}: {estimate}"
                )
        self._estimates = dict(service_estimates)
        self._queue: List[QueuedRequest] = []

    def _key(self, request: QueuedRequest):
        estimate = self._estimates.get(request.app_name, float("inf"))
        return (estimate, request.sequence)

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty SJF queue")
        best = min(self._queue, key=self._key)
        self._queue.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._queue)


class LinearCriticalityPolicy:
    """Priority classes with a linear scan, FCFS within a class."""

    def __init__(
        self, priorities: Dict[str, int], default_priority: int = 10
    ) -> None:
        self._priorities = dict(priorities)
        self._default = default_priority
        self._queue: List[QueuedRequest] = []

    def priority_of(self, app_name: str) -> int:
        return self._priorities.get(app_name, self._default)

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty criticality queue")
        best = min(
            self._queue,
            key=lambda r: (self.priority_of(r.app_name), r.sequence),
        )
        self._queue.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._queue)


class LinearDAGAwarePolicy:
    """DAG-aware preference with a linear scan."""

    def __init__(self, applications: Dict[str, Application]) -> None:
        if not applications:
            raise SchedulingError("DAG-aware policy needs the application set")
        self._accelerated_counts = {
            name: len(app.accelerated_functions)
            for name, app in applications.items()
        }
        self._queue: List[QueuedRequest] = []

    def accelerated_functions(self, app_name: str) -> int:
        return self._accelerated_counts.get(app_name, 0)

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty DAG-aware queue")
        best = min(
            self._queue,
            key=lambda r: (-self.accelerated_functions(r.app_name), r.sequence),
        )
        self._queue.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._queue)
