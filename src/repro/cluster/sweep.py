"""Scenario sweep harness for rack-scale studies (Figs. 13, 15-17).

At-scale questions are grids: every request-rate scale times every fleet
size times every scheduling policy, for both platforms.  Run naively,
each cell regenerates the same 20-minute trace and redraws the same
service-sample blocks.  :class:`RackSweep` runs a list of
:class:`RackScenario` cells over one shared
:class:`~repro.experiments.common.SuiteContext`, reusing

- **traces** — keyed by ``(seed, rate_scale)``, generated once; and
- **service samples** — a per-sweep
  :class:`~repro.cluster.simulation.ServiceSampleCache` replays draw
  blocks (and their RNG state transitions) across cells, so scenarios
  that differ only in fleet size or policy do not re-sample the latency
  distributions they share.

Both reuses are bit-exact: a sweep cell produces the same
:class:`~repro.cluster.simulation.SimulationSeries` it would produce run
standalone.  The per-figure harnesses (``fig13.sweep``,
``fig13.policy_sweep``, ``fig15.run_rack``, ``fig16.run_rack``,
``fig17.run_rack``) are thin grids over this module.  Every policy cell
runs on a vectorized engine: FCFS on the busy-period kernel, keyed
policies (sjf / criticality / dag) on the index-priority engine of
:mod:`repro.cluster.policy_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.control import ControlPlane
from repro.cluster.faults import DROP_REASONS, FaultSchedule, RetryPolicy
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.simulation import (
    RackSimulation,
    ServiceSampleCache,
    SimulationSeries,
)
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, RequestTrace, TraceGenerator
from repro.errors import ConfigurationError

# Policy grid values understood by :meth:`RackSweep.run`.
POLICY_NAMES = ("fcfs", "sjf", "criticality", "dag")

# Sample count for the per-app expected-service estimates SJF sorts by.
_ESTIMATE_SAMPLES = 256


def service_estimates_for(
    context, platform: str, samples: int = _ESTIMATE_SAMPLES
) -> Dict[str, float]:
    """Deterministic per-app expected service times (what SJF sorts by).

    The single definition both :class:`RackSweep` cells and
    ``scripts/bench_policy.py`` use, so benchmarks time exactly the
    policy configuration the sweeps run.
    """
    model = context.models[platform]
    return {
        name: float(
            np.mean(
                model.sample_latencies(app, np.random.default_rng(0), samples)
            )
        )
        for name, app in context.applications.items()
    }


def default_criticality_priorities(context) -> Dict[str, int]:
    """One priority class per application, in alphabetical order.

    A criticality policy needs a non-empty integer priority map; this
    default is arbitrary but deterministic, so sweep cells genuinely
    exercise multi-class scheduling.  Pass ``priorities`` to
    :class:`RackSweep` to rank by real criticality instead.
    """
    return {
        name: rank
        for rank, name in enumerate(sorted(context.applications))
    }


@dataclass(frozen=True)
class RackScenario:
    """One cell of a rack-scale study grid."""

    platform: str
    rate_scale: float = 1.0
    max_instances: int = 200
    policy: str = "fcfs"
    queue_depth: int = 10_000
    cold: bool = False
    seed: int = 13
    faults: Optional[FaultSchedule] = None
    retry: Optional[RetryPolicy] = None
    control: Optional[ControlPlane] = None

    def label(self) -> str:
        parts = [
            self.platform,
            f"rate x{self.rate_scale:g}",
            f"{self.max_instances} inst",
            self.policy,
        ]
        if self.cold:
            parts.append("cold")
        if self.faults is not None and self.faults.active:
            parts.append("faults")
        if self.retry is not None and self.retry.active:
            parts.append("retry")
        if self.control is not None and self.control.active:
            if self.control.autoscaler is not None:
                parts.append(f"scale:{self.control.autoscaler.policy}")
            if (
                self.control.overload is not None
                and self.control.overload.active
            ):
                parts.append("shed")
        return " | ".join(parts)


@dataclass
class ScenarioResult:
    """A scenario plus its measurement series and summary statistics."""

    scenario: RackScenario
    series: SimulationSeries

    @property
    def completed_count(self) -> int:
        """Completed requests, for either series representation."""
        series = self.series
        if hasattr(series, "completed_count"):
            return int(series.completed_count)
        return len(series.completed_latency_seconds)

    @property
    def mean_latency_seconds(self) -> float:
        """Mean completed latency; NaN when the cell completed nothing.

        A scenario that drops every request (tiny fleet under heavy
        overload, or a fault schedule that kills everything) has no
        latency to average — NaN, matching the availability
        NaN-on-empty convention, rather than a misleading 0.0.
        """
        if self.completed_count == 0:
            return float("nan")
        return self.series.mean_latency_seconds

    def latency_percentile(self, percentile: float) -> float:
        """Completed-latency percentile; NaN when nothing completed.

        Exact over the materialized latency vector; under the streaming
        engine the series is a
        :class:`~repro.cluster.streaming.StreamedSeries`, which answers
        from its quantile sketch (bin-resolution accurate) instead.
        """
        if not 0 <= percentile <= 100:
            raise ConfigurationError(
                f"percentile out of range: {percentile}"
            )
        if self.completed_count == 0:
            return float("nan")
        series = self.series
        if hasattr(series, "latency_percentile"):
            return float(series.latency_percentile(percentile))
        return float(
            np.percentile(series.completed_latency_seconds, percentile)
        )

    @property
    def p95_latency_seconds(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def peak_queue_depth(self) -> int:
        depth = self.series.queue_depth
        return int(depth.max()) if len(depth) else 0

    @property
    def dropped_requests(self) -> int:
        return self.series.dropped_requests

    @property
    def drop_fraction(self) -> float:
        total = self.series.total_requests
        return self.series.dropped_requests / total if total else 0.0

    def _availability_columns(self) -> Dict[str, object]:
        """Per-reason drop breakdown plus availability telemetry.

        Always present (zeros under a fault-free run) so every row of a
        sweep table carries the same keys whether or not the cell was
        perturbed — the report writers require rectangular tables.
        """
        breakdown = self.series.drop_breakdown()
        columns: Dict[str, object] = {
            f"dropped_{reason}": breakdown.get(reason, 0)
            for reason in DROP_REASONS
        }
        columns["availability"] = round(self.series.availability, 6)
        columns["retries"] = self.series.retries
        columns["timeouts"] = self.series.timeouts
        columns["crash_kills"] = self.series.crash_kills
        columns["hedges_launched"] = self.series.hedges_launched
        columns["hedge_wins"] = self.series.hedge_wins
        columns["scale_ups"] = self.series.scale_ups
        columns["scale_downs"] = self.series.scale_downs
        return columns

    def summary(self) -> Dict[str, object]:
        """Flat dict for tables / JSON records."""
        row = {
            "scenario": self.scenario.label(),
            "requests": self.series.total_requests,
            "mean_latency_s": round(self.mean_latency_seconds, 6),
            "p95_latency_s": round(self.p95_latency_seconds, 6),
            "p99_latency_s": round(self.p99_latency_seconds, 6),
            "peak_queue": self.peak_queue_depth,
            "dropped": self.dropped_requests,
            "wall_clock_s": round(self.series.wall_clock_seconds, 3),
        }
        row.update(self._availability_columns())
        return row

    def as_row(self) -> Dict[str, object]:
        """Structured record: scenario knobs as columns, then metrics.

        Unlike :meth:`summary` (which folds the scenario into one label
        string), this keeps each grid axis queryable — the form the
        experiment registry serialises.
        """
        scenario = self.scenario
        row = {
            "platform": scenario.platform,
            "rate_scale": scenario.rate_scale,
            "max_instances": scenario.max_instances,
            "policy": scenario.policy,
            "cold": scenario.cold,
            "requests": self.series.total_requests,
            "mean_latency_s": round(self.mean_latency_seconds, 6),
            "p95_latency_s": round(self.p95_latency_seconds, 6),
            "p99_latency_s": round(self.p99_latency_seconds, 6),
            "peak_queue": self.peak_queue_depth,
            "dropped": self.dropped_requests,
            "wall_clock_s": round(self.series.wall_clock_seconds, 3),
        }
        row.update(self._availability_columns())
        return row


def scenario_grid(
    platforms: Sequence[str],
    rate_scales: Sequence[float] = (1.0,),
    max_instances: Sequence[int] = (200,),
    policies: Sequence[str] = ("fcfs",),
    queue_depth: int = 10_000,
    cold: bool = False,
    seed: int = 13,
    faults: Optional[FaultSchedule] = None,
    retry: Optional[RetryPolicy] = None,
    control: Optional[ControlPlane] = None,
) -> List[RackScenario]:
    """The full cross product, ordered platform-major for cache locality."""
    return [
        RackScenario(
            platform=platform,
            rate_scale=float(rate_scale),
            max_instances=int(instances),
            policy=policy,
            queue_depth=queue_depth,
            cold=cold,
            seed=seed,
            faults=faults,
            retry=retry,
            control=control,
        )
        for platform in platforms
        for rate_scale in rate_scales
        for instances in max_instances
        for policy in policies
    ]


class RackSweep:
    """Runs scenario grids over one suite context with shared inputs."""

    def __init__(
        self,
        context,
        rate_envelope: Sequence[float] = DEFAULT_RATE_ENVELOPE,
        segment_seconds: float = 60.0,
        sample_interval_seconds: float = 1.0,
        engine: str = "auto",
        reuse_service_samples: bool = True,
        priorities: Optional[Dict[str, int]] = None,
        chunk_requests: Optional[int] = None,
    ) -> None:
        if chunk_requests is not None and engine != "streaming":
            raise ConfigurationError(
                "chunk_requests only applies to engine='streaming'; "
                f"got engine={engine!r}"
            )
        self._context = context
        self._envelope = tuple(float(rate) for rate in rate_envelope)
        self._segment_seconds = segment_seconds
        self._sample_interval = sample_interval_seconds
        self._engine = engine
        self._chunk_requests = chunk_requests
        self._caches: Optional[Dict[str, ServiceSampleCache]] = (
            {} if reuse_service_samples else None
        )
        self._traces: Dict[Tuple[int, float], RequestTrace] = {}
        self._estimates: Dict[str, Dict[str, float]] = {}
        self._priorities = dict(priorities) if priorities else None

    # ------------------------------------------------------------------
    def trace_for(self, seed: int, rate_scale: float) -> RequestTrace:
        """The (cached) trace realisation for one ``(seed, rate_scale)``."""
        key = (int(seed), float(rate_scale))
        trace = self._traces.get(key)
        if trace is None:
            envelope = tuple(rate * rate_scale for rate in self._envelope)
            generator = TraceGenerator(
                self._context.app_names,
                rate_envelope=envelope,
                segment_seconds=self._segment_seconds,
            )
            trace = generator.generate(np.random.default_rng(seed))
            self._traces[key] = trace
        return trace

    def _service_estimates(self, platform: str) -> Dict[str, float]:
        """Memoised :func:`service_estimates_for` per platform."""
        estimates = self._estimates.get(platform)
        if estimates is None:
            estimates = service_estimates_for(self._context, platform)
            self._estimates[platform] = estimates
        return estimates

    def _criticality_priorities(self) -> Dict[str, int]:
        """Explicit ``priorities`` or the deterministic default ranking."""
        if self._priorities is not None:
            return self._priorities
        return default_criticality_priorities(self._context)

    def _policy_factory(
        self, scenario: RackScenario
    ) -> Optional[PolicyFactory]:
        name = scenario.policy
        if name == "fcfs":
            return None
        if name == "sjf":
            return PolicyFactory(
                "sjf",
                service_estimates=self._service_estimates(scenario.platform),
            )
        if name == "criticality":
            return PolicyFactory(
                "criticality", priorities=self._criticality_priorities()
            )
        if name == "dag":
            return PolicyFactory(
                "dag", applications=self._context.applications
            )
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; expected one of "
            f"{POLICY_NAMES}"
        )

    # ------------------------------------------------------------------
    def run_one(
        self, scenario: RackScenario, trace: Optional[RequestTrace] = None
    ) -> ScenarioResult:
        """Run a single grid cell (bit-identical to a standalone run)."""
        model = self._context.models.get(scenario.platform)
        if model is None:
            raise ConfigurationError(
                f"unknown platform {scenario.platform!r}; context has "
                f"{list(self._context.models)}"
            )
        cache = None
        if self._caches is not None:
            cache = self._caches.setdefault(
                scenario.platform, ServiceSampleCache()
            )
        simulation = RackSimulation(
            model,
            self._context.applications,
            max_instances=scenario.max_instances,
            queue_depth=scenario.queue_depth,
            seed=scenario.seed,
            policy=self._policy_factory(scenario),
            cold=scenario.cold,
            sample_cache=cache,
            faults=scenario.faults,
            retry=scenario.retry,
            control=scenario.control,
        )
        if trace is None:
            trace = self.trace_for(scenario.seed, scenario.rate_scale)
        if self._engine == "streaming":
            series = simulation.run(
                trace, self._sample_interval, engine=self._engine,
                chunk_requests=self._chunk_requests,
            )
        else:
            series = simulation.run(
                trace, self._sample_interval, engine=self._engine
            )
        return ScenarioResult(scenario=scenario, series=series)

    def run(
        self,
        scenarios: Iterable[RackScenario],
        trace: Optional[RequestTrace] = None,
    ) -> List[ScenarioResult]:
        """Run every scenario; pass ``trace`` to override trace lookup."""
        return [self.run_one(scenario, trace=trace) for scenario in scenarios]
