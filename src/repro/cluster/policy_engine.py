"""Vectorized engine for index-priority (keyed) scheduling policies.

:mod:`repro.cluster.fast_engine` vectorizes FCFS by exploiting that
service order equals arrival order.  Under a keyed policy (SJF,
criticality, DAG-aware — any :class:`~repro.cluster.schedulers.KeyedPolicy`)
that only breaks *inside congestion*: while the system is below capacity
every request starts the moment it arrives, so the policy never gets to
reorder anything.  This engine exploits exactly that split:

- **Pass A (contention-free chunks).**  While the queue is empty and the
  fleet has headroom, arrivals are processed in adaptively sized numpy
  chunks exactly like the FCFS engine's pass A: ``completion = arrival +
  service`` plus ``searchsorted`` occupancy checks, with tentative
  service draws rolled back when a chunk is cut at the first arrival
  that would have to queue.
- **Keyed dispatch kernel (congested stretches).**  Once the fleet
  saturates, each completion dispatches the queued request minimizing
  ``(*key, sequence)``.  The kernel runs two primitive heaps — float
  completion times and raw key tuples — with no event objects, no
  callbacks, and no per-event queue scans, which is what makes policy
  sweeps at paper scale feasible.  Service times are drawn through
  ``RackSimulation._service_time`` at each dispatch, i.e. in exactly the
  oracle's order.
- **Series reconstruction.**  Queue-depth / busy-instance series are
  rebuilt per sample tick with ``np.searchsorted`` (honouring the event
  queue's arrival < tick < completion tie-break); completed-latency
  series are ordered by ``(completion time, start order)``, the order
  the oracle's completion events fire in.

The event-driven path in :mod:`repro.cluster.simulation` remains the
reference oracle: for every keyed policy this engine is bit-identical to
it — same drops, same latencies, same series, same RNG end state, same
service-pool state (enforced by ``tests/test_policy_equivalence.py``,
the keyed twin of ``tests/test_rack_equivalence.py``).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush, heapreplace
from typing import TYPE_CHECKING, List

import numpy as np

from repro.cluster.fast_engine import (
    _CHUNK_MAX,
    _CHUNK_MIN,
    _ServicePools,
    sample_tick_times,
)
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.schedulers import KeyedPolicy
    from repro.cluster.simulation import RackSimulation, SimulationSeries
    from repro.cluster.trace import RequestTrace


def run_keyed(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    trace: "RequestTrace",
    sample_interval_seconds: float,
) -> "SimulationSeries":
    """Simulate ``trace`` under ``policy``'s priority key, vectorized."""
    from repro.cluster.simulation import SimulationSeries

    arrivals = np.asarray(trace.arrival_seconds, dtype=np.float64)
    n = len(arrivals)
    if n and float(arrivals[0]) < 0:
        raise SimulationError(
            f"event scheduled at negative time {float(arrivals[0])}"
        )
    c = sim._max_instances
    qmax = sim._queue_depth

    app_names = list(dict.fromkeys(trace.app_names))
    name_to_id = {name: i for i, name in enumerate(app_names)}
    n_apps = len(app_names)
    app_ids = np.fromiter(
        (name_to_id[name] for name in trace.app_names),
        dtype=np.intp,
        count=n,
    )
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)
    # Static per-app key prefixes; a queued request's full sort key is
    # ``prefix + (sequence, arrival, app_id)`` — the trailing payload
    # never influences ordering because sequences are unique.  Plain
    # python-float tuples (not a numpy round-trip): heap sifts compare
    # these on every congested dispatch.
    prefixes = [policy.key.key_for(name) for name in app_names]

    # Primitive-heap state: ``pending`` holds in-service completion
    # times (len == busy instances), ``queue`` the keyed entries.
    pending: List[float] = []
    queue: List[tuple] = []
    dropped = 0
    drop_times: List[float] = []

    # Start log, appended in start (chronological event) order — the
    # order the oracle pushes completion events, draws service samples,
    # and therefore the order its latency list resolves ties in.
    start_arrivals: List[float] = []
    start_completions: List[float] = []
    immediate_arrivals: List[float] = []  # starts at the arrival itself
    queued_arrivals: List[float] = []  # arrivals that entered the queue
    queued_starts: List[float] = []  # dispatch times, in dispatch order

    arrivals_list = arrivals.tolist()
    app_ids_list = app_ids.tolist()
    service_time = sim._service_time
    observe_app = policy.observe_app

    def dispatch(now: float) -> None:
        """Serve the min-key queued request on the server freed at now."""
        entry = heappop(queue)
        arrival_t = entry[-2]
        service = service_time(app_names[entry[-1]])
        completion = now + service
        heappush(pending, completion)
        queued_starts.append(now)
        start_arrivals.append(arrival_t)
        start_completions.append(completion)

    i = 0
    chunk_size = _CHUNK_MIN
    while i < n:
        now = arrivals_list[i]
        # Completions strictly before this arrival fire first (equal
        # timestamps fire after: arrival < tick < completion), each one
        # handing its server to the current min-key queued request.
        while pending and pending[0] < now:
            freed_at = heappop(pending)
            if queue:
                dispatch(freed_at)
        busy = len(pending)

        # ---- Pass A: contention-free chunk (all starts immediate) ---
        if not queue and busy < c:
            hi = min(n, i + chunk_size)
            unknown = np.nonzero(~known[app_ids[i:hi]])[0]
            if unknown.size:
                # Cut before the first unknown app; the serial step
                # below reproduces the oracle's failure exactly.
                hi = i + int(unknown[0])
            if hi > i:
                chunk = slice(i, hi)
                m = hi - i
                arr = arrivals[chunk]
                values, events, snapshot = pools.peek(app_ids[chunk])
                pend_sorted = np.sort(np.asarray(pending))
                dep_pend = np.searchsorted(pend_sorted, arr, side="left")
                comp_opt = arr + values
                dep_chunk = np.searchsorted(
                    np.sort(comp_opt), arr, side="left"
                )
                n_before = busy + np.arange(m) - dep_pend - dep_chunk
                crossing = np.nonzero(n_before >= c)[0]
                cut = int(crossing[0]) if crossing.size else m
                pools.commit(app_ids[chunk], cut, events, snapshot, n_apps)
                # cut >= 1 here: with busy < c the first arrival always
                # fits, so the chunk never commits empty.  Observation
                # is coalesced to one call per app per chunk (the
                # documented set-like contract) — a per-request Python
                # call would forfeit the batched pass's throughput.
                for committed_id in np.unique(app_ids[i : i + cut]):
                    observe_app(app_names[committed_id])
                started = arr[:cut].tolist()
                completions = comp_opt[:cut].tolist()
                immediate_arrivals.extend(started)
                start_arrivals.extend(started)
                start_completions.extend(completions)
                pending.extend(completions)
                heapify(pending)
                i += cut
                chunk_size = (
                    min(chunk_size * 2, _CHUNK_MAX)
                    if cut == m
                    else _CHUNK_MIN
                )
                continue

        # ---- Keyed dispatch kernel: one arrival, serially -----------
        app_id = app_ids_list[i]
        if busy < c:
            observe_app(app_names[app_id])
            service = service_time(app_names[app_id])
            completion = now + service
            heappush(pending, completion)
            immediate_arrivals.append(now)
            start_arrivals.append(now)
            start_completions.append(completion)
        elif len(queue) < qmax:
            observe_app(app_names[app_id])
            heappush(queue, prefixes[app_id] + (i, now, app_id))
            queued_arrivals.append(now)
        else:
            dropped += 1
            drop_times.append(now)
        i += 1

    # ---- Drain: serve the backlog in pure key order -----------------
    if queue and pending and all(known[entry[-1]] for entry in queue):
        # Once arrivals stop the dispatch order is fully determined:
        # every completion hands its server to the min-(key, sequence)
        # entry and nothing new enqueues, so the backlog is served in
        # exactly sorted-queue order.  That lets one batched service
        # draw (pools replay the oracle's per-dispatch draw order) feed
        # the float-heap kernel instead of one Python draw per dispatch.
        backlog = sorted(queue)
        drain_ids = np.fromiter(
            (entry[-1] for entry in backlog),
            dtype=np.intp,
            count=len(backlog),
        )
        values, events, snapshot = pools.peek(drain_ids)
        pools.commit(drain_ids, len(backlog), events, snapshot, n_apps)
        for entry, service in zip(backlog, values.tolist()):
            freed_at = pending[0]
            completion = freed_at + service
            heapreplace(pending, completion)
            queued_starts.append(freed_at)
            start_arrivals.append(entry[-2])
            start_completions.append(completion)
        queue.clear()
        pending.clear()
    else:
        # Serial fallback: an unknown app in the backlog must fail at
        # its exact dispatch (same SchedulingError, same RNG state).
        while pending:
            freed_at = heappop(pending)
            if queue:
                dispatch(freed_at)

    # ---- Series reconstruction --------------------------------------
    start_arr = np.asarray(start_arrivals)
    start_comp = np.asarray(start_completions)
    # Completion events fire in (time, push order) order; pushes happen
    # in start order, so ties resolve by start index.
    order = np.lexsort((np.arange(len(start_comp)), start_comp))
    completed_times = start_comp[order]
    latencies = (start_comp - start_arr)[order]

    ticks = sample_tick_times(trace.duration_seconds, sample_interval_seconds)
    imm = np.asarray(immediate_arrivals)
    q_arrivals = np.asarray(queued_arrivals)
    q_starts = np.asarray(queued_starts)
    # Same-timestamp event order is arrival < sample tick < completion:
    # arrivals (and with them immediate starts) at exactly a tick are
    # visible to it, queue pops and completions at exactly a tick are not.
    busy_series = (
        np.searchsorted(imm, ticks, side="right")
        + np.searchsorted(q_starts, ticks, side="left")
        - np.searchsorted(completed_times, ticks, side="left")
    )
    queue_depth = np.searchsorted(
        q_arrivals, ticks, side="right"
    ) - np.searchsorted(q_starts, ticks, side="left")

    return SimulationSeries(
        sample_times=ticks,
        queue_depth=queue_depth,
        busy_instances=busy_series,
        completed_latency_seconds=latencies,
        completed_times=completed_times,
        dropped_requests=dropped,
        total_requests=n,
        dropped_times=np.asarray(drop_times),
        dropped_reasons=np.zeros(len(drop_times), dtype=np.int8),
    )
