"""Rack-scale discrete-event simulation (paper §6.1, §6.2.2).

Up to 200 function instances serve a request trace under FCFS scheduling
with a bounded queue (depth 10,000).  Per-request service times are drawn
from the execution model's latency distribution for the request's
application, pre-sampled in bulk for speed.  Outputs the queue-depth and
latency time series of Fig. 13 plus aggregate wall-clock statistics.

Two engines produce those series:

- ``engine="event"`` — the reference oracle: a timestamp-ordered event
  queue firing one callback per arrival, completion, and sample tick.
- ``engine="vectorized"`` — the numpy busy-period engine in
  :mod:`repro.cluster.fast_engine`; for FCFS it is bit-identical to the
  oracle (same drops, same latencies, same series, same RNG end state)
  at a fraction of the wall-clock cost.

The default ``engine="auto"`` picks a vectorized engine whenever the
trace is time-ordered: FCFS runs use the busy-period engine above, and
keyed policies (SJF / criticality / DAG-aware — anything driven by a
:class:`~repro.cluster.policy_keys.PolicyKey`) use the index-priority
engine in :mod:`repro.cluster.policy_engine`, which batches
contention-free stretches and dispatches congested ones through a
primitive-heap kernel.  Both are bit-identical to the event-driven
oracle, which remains the fallback for unsorted traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.control import ControlPlane
from repro.cluster.fast_engine import run_vectorized, sample_tick_times
from repro.cluster.faults import (
    DROP_REASONS,
    FaultSchedule,
    FaultTimeline,
    RetryPolicy,
)
from repro.cluster.policy_engine import run_keyed
from repro.cluster.schedulers import (
    FCFSPolicy,
    KeyedPolicy,
    PolicyFactory,
    QueuedRequest,
)
from repro.core.model import ServerlessExecutionModel
from repro.cluster.trace import RequestTrace
from repro.errors import ConfigurationError, SchedulingError
from repro.serverless.application import Application
from repro.sim.event_queue import Event, EventQueue

# Number of latency samples pre-drawn per application.
_PRESAMPLE_COUNT = 4096

# Ceiling on one pool growth draw.  The pool doubles until a block
# would exceed this, then grows in fixed blocks: unbounded doubling
# makes the transient arrays inside a single ``sample_latencies`` call
# O(trace), which would defeat the streaming engines' constant-memory
# contract.  Part of the deterministic draw schedule shared by every
# engine — changing it changes results for any simulation consuming
# more than 2x this many samples per app.
_POOL_BLOCK_MAX = 32_768

_ENGINES = ("auto", "event", "vectorized", "streaming")


class ServiceSampleCache:
    """Memoised service-time draw blocks, shared across simulations.

    A sweep runs the same platform model over the same trace under many
    scenario knobs (instance counts, policies, cold starts); each run
    draws the same pre-sample blocks from the same RNG states.  The cache
    keys a draw by ``(model, application, count, cold, RNG state)`` and
    replays the stored block *and* the post-draw RNG state on a hit, so
    cached runs stay bit-identical to uncached ones.
    """

    def __init__(self) -> None:
        self._blocks: Dict[tuple, tuple] = {}
        # Strong refs keep id()-based keys unambiguous for the cache's
        # lifetime (a collected model's id could otherwise be reused).
        self._pinned: List[object] = []
        self.hits = 0
        self.misses = 0

    def draw(
        self,
        model: ServerlessExecutionModel,
        app: Application,
        rng: np.random.Generator,
        count: int,
        cold: bool = False,
    ) -> np.ndarray:
        key = (
            id(model),
            id(app),
            int(count),
            bool(cold),
            repr(rng.bit_generator.state),
        )
        cached = self._blocks.get(key)
        if cached is not None:
            values, state_after = cached
            rng.bit_generator.state = state_after
            self.hits += 1
            return values
        values = model.sample_latencies(app, rng, count, cold=cold)
        self._blocks[key] = (values, rng.bit_generator.state)
        self._pinned.append(model)
        self._pinned.append(app)
        self.misses += 1
        return values


def _empty_float_array() -> np.ndarray:
    return np.empty(0)


def _empty_reason_array() -> np.ndarray:
    return np.empty(0, dtype=np.int8)


def _empty_int_array() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class SimulationSeries:
    """Time-series outputs of one rack simulation (Fig. 13 b-d).

    Beyond the Fig. 13 series, each run carries availability telemetry:
    per-drop times and reason codes (indices into
    :data:`~repro.cluster.faults.DROP_REASONS`) and the chaos counters
    (retries injected, timeouts fired, in-flight requests killed by
    crashes, hedges launched/won).  Fault-free runs report all-zero
    counters and every drop as ``queue_full`` — the only loss mode a
    perfect fleet has.
    """

    sample_times: np.ndarray
    queue_depth: np.ndarray
    busy_instances: np.ndarray
    completed_latency_seconds: np.ndarray
    completed_times: np.ndarray
    dropped_requests: int
    total_requests: int
    dropped_times: np.ndarray = field(default_factory=_empty_float_array)
    dropped_reasons: np.ndarray = field(default_factory=_empty_reason_array)
    retries: int = 0
    timeouts: int = 0
    crash_kills: int = 0
    hedges_launched: int = 0
    hedge_wins: int = 0
    # Control-plane telemetry (populated only by the control engines;
    # empty/zero for every other path).  ``live_instances`` is the
    # autoscaled live capacity at each sample tick;
    # ``completed_app_ids`` indexes ``app_catalog`` per completion, for
    # per-criticality latency slicing.
    live_instances: np.ndarray = field(default_factory=_empty_int_array)
    completed_app_ids: np.ndarray = field(default_factory=_empty_int_array)
    app_catalog: tuple = ()
    scale_ups: int = 0
    scale_downs: int = 0

    def mean_latency_per_bucket(self, bucket_seconds: float = 60.0) -> np.ndarray:
        """Average request latency per time bucket (Fig. 13 c/d)."""
        if bucket_seconds <= 0:
            raise ConfigurationError(f"non-positive bucket: {bucket_seconds}")
        if len(self.completed_times) == 0:
            return np.array([])
        # The horizon must cover completions that land after the last
        # sample tick (a saturated rack keeps draining past the trace
        # end); clamping them into the final sampled bucket would skew
        # its mean with the whole backlog.
        horizon = float(self.completed_times.max())
        if len(self.sample_times):
            horizon = max(horizon, float(self.sample_times[-1]))
        buckets = max(1, int(np.ceil(horizon / bucket_seconds)))
        sums = np.zeros(buckets)
        counts = np.zeros(buckets)
        indices = np.minimum(
            (self.completed_times / bucket_seconds).astype(int), buckets - 1
        )
        np.add.at(sums, indices, self.completed_latency_seconds)
        np.add.at(counts, indices, 1)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        return means

    def identical_to(self, other: "SimulationSeries") -> bool:
        """Exact (bit-level) equality with another run's series."""
        return (
            self.dropped_requests == other.dropped_requests
            and self.total_requests == other.total_requests
            and self.retries == other.retries
            and self.timeouts == other.timeouts
            and self.crash_kills == other.crash_kills
            and self.hedges_launched == other.hedges_launched
            and self.hedge_wins == other.hedge_wins
            and np.array_equal(self.sample_times, other.sample_times)
            and np.array_equal(self.queue_depth, other.queue_depth)
            and np.array_equal(self.busy_instances, other.busy_instances)
            and np.array_equal(
                self.completed_latency_seconds,
                other.completed_latency_seconds,
            )
            and np.array_equal(self.completed_times, other.completed_times)
            and np.array_equal(self.dropped_times, other.dropped_times)
            and np.array_equal(self.dropped_reasons, other.dropped_reasons)
            and self.scale_ups == other.scale_ups
            and self.scale_downs == other.scale_downs
            and self.app_catalog == other.app_catalog
            and np.array_equal(self.live_instances, other.live_instances)
            and np.array_equal(
                self.completed_app_ids, other.completed_app_ids
            )
        )

    def drop_breakdown(self) -> Dict[str, int]:
        """Drops by reason (``queue_full`` / ``timeout`` / ``crashed`` /
        ``shed``).

        Always sums to :attr:`dropped_requests` — runs predating the
        per-reason record (empty ``dropped_reasons`` with a non-zero
        total) report everything as ``queue_full``, the only loss mode
        the fault-free simulator had.
        """
        counts = dict.fromkeys(DROP_REASONS, 0)
        if len(self.dropped_reasons):
            for code, count in zip(
                *np.unique(self.dropped_reasons, return_counts=True)
            ):
                counts[DROP_REASONS[int(code)]] = int(count)
        else:
            counts[DROP_REASONS[0]] = self.dropped_requests
        return counts

    def completed_latencies_for_apps(self, app_names) -> np.ndarray:
        """Latencies of completions belonging to the given applications.

        Requires the per-completion app record the control engines emit
        (:attr:`completed_app_ids` / :attr:`app_catalog`); other engines
        do not track it, so this returns an empty array for their runs.
        """
        if len(self.completed_app_ids) == 0:
            return np.empty(0)
        wanted = set(app_names)
        ids = [
            i for i, name in enumerate(self.app_catalog) if name in wanted
        ]
        mask = np.isin(self.completed_app_ids, np.asarray(ids, dtype=np.int64))
        return self.completed_latency_seconds[mask]

    @property
    def availability(self) -> float:
        """Fraction of trace requests that eventually completed.

        An empty trace has nothing to account for: availability is
        undefined rather than perfect — NaN, the same convention
        :meth:`availability_per_bucket` uses for buckets where no
        request ended.
        """
        if self.total_requests == 0:
            return float("nan")
        return len(self.completed_latency_seconds) / self.total_requests

    @property
    def goodput_rps(self) -> float:
        """Completed requests per second of simulated wall clock."""
        horizon = self.wall_clock_seconds
        if horizon <= 0:
            return 0.0
        return len(self.completed_latency_seconds) / horizon

    def availability_per_bucket(
        self, bucket_seconds: float = 60.0
    ) -> np.ndarray:
        """Per-bucket ``completed / (completed + dropped)`` fraction.

        Buckets with no terminating requests report NaN — no request
        ended there, so availability is undefined rather than perfect.
        """
        if bucket_seconds <= 0:
            raise ConfigurationError(f"non-positive bucket: {bucket_seconds}")
        horizon = 0.0
        for times in (self.completed_times, self.dropped_times, self.sample_times):
            if len(times):
                horizon = max(horizon, float(times.max()))
        if horizon <= 0:
            return np.array([])
        buckets = max(1, int(np.ceil(horizon / bucket_seconds)))
        completed = np.zeros(buckets)
        ended = np.zeros(buckets)
        for times, target in (
            (self.completed_times, completed),
            (self.dropped_times, None),
        ):
            if len(times) == 0:
                continue
            indices = np.minimum(
                (times / bucket_seconds).astype(int), buckets - 1
            )
            np.add.at(ended, indices, 1)
            if target is not None:
                np.add.at(target, indices, 1)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(ended > 0, completed / np.maximum(ended, 1), np.nan)

    @property
    def wall_clock_seconds(self) -> float:
        """Time from first arrival to last completion."""
        if len(self.completed_times) == 0:
            return 0.0
        return float(self.completed_times.max())

    @property
    def mean_latency_seconds(self) -> float:
        if len(self.completed_latency_seconds) == 0:
            return 0.0
        return float(self.completed_latency_seconds.mean())


class RackSimulation:
    """Rack simulator for one execution model under a scheduling policy.

    Defaults to FCFS, the paper's deployed policy (§5.3); pass a
    :class:`~repro.cluster.schedulers.PolicyFactory` to explore the
    paper's future-work policies (SJF, criticality-, DAG-aware).
    """

    def __init__(
        self,
        model: ServerlessExecutionModel,
        applications: Dict[str, Application],
        max_instances: int = 200,
        queue_depth: int = 10_000,
        seed: int = 2024,
        policy: Optional[PolicyFactory] = None,
        cold: bool = False,
        sample_cache: Optional[ServiceSampleCache] = None,
        faults: Optional[FaultSchedule] = None,
        retry: Optional[RetryPolicy] = None,
        control: Optional[ControlPlane] = None,
    ) -> None:
        if max_instances <= 0:
            raise ConfigurationError(f"non-positive instances: {max_instances}")
        if queue_depth <= 0:
            raise ConfigurationError(f"non-positive queue depth: {queue_depth}")
        self._model = model
        self._applications = dict(applications)
        self._max_instances = max_instances
        self._queue_depth = queue_depth
        self._rng = np.random.default_rng(seed)
        self._policy_factory = policy
        self._cold = cold
        self._sample_cache = sample_cache
        self._faults = faults
        self._retry = retry
        self._control = control
        self._service_samples: Dict[str, np.ndarray] = {}
        self._service_cursor: Dict[str, int] = {}
        # Logical offset of each physical pool's first element: the
        # streaming engines compact consumed prefixes away, but the
        # doubling growth schedule (and hence RNG consumption) is
        # computed on the logical length, so draws stay identical.
        self._service_trim: Dict[str, int] = {}
        # Bounded-pool mode (streamed trace sources): block draws larger
        # than this window retain only their leading slice; the rest is
        # re-materialized on demand by replaying the recorded RNG state
        # on a clone.  None = keep every drawn sample (default).
        self._service_window: Optional[int] = None
        # Per-app FIFO of partially materialized blocks:
        # [pre-draw bit-generator state, block length, samples already
        # appended to the physical pool].  Only the head block may have
        # a prefix in the pool; later blocks wait in full.
        self._service_pending: Dict[str, List[List[object]]] = {}
        self._last_policy: Optional[KeyedPolicy] = None

    @property
    def last_policy(self) -> Optional[KeyedPolicy]:
        """The policy instance built by the most recent :meth:`run`.

        Lets sweeps inspect per-run policy state after the fact — e.g.
        :attr:`~repro.cluster.schedulers.ShortestJobFirstPolicy.unknown_apps`
        to assert an estimate table covered the whole trace.
        """
        return self._last_policy

    def _draw_service_block(
        self,
        app_name: str,
        count: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw ``count`` service times for ``app_name`` from the RNG."""
        app = self._applications.get(app_name)
        if app is None:
            raise SchedulingError(f"unknown application {app_name!r}")
        if rng is None:
            rng = self._rng
        if self._sample_cache is not None:
            return self._sample_cache.draw(
                self._model, app, rng, count, cold=self._cold
            )
        return self._model.sample_latencies(
            app, rng, count, cold=self._cold
        )

    def _pool_pending(self, app_name: str) -> int:
        """Drawn-but-not-yet-materialized sample count for ``app_name``."""
        blocks = self._service_pending.get(app_name)
        if not blocks:
            return 0
        return sum(int(length) - int(drawn) for _, length, drawn in blocks)

    def _pool_grow_block(self, app_name: str, size: int) -> np.ndarray:
        """One schedule draw; returns the slice to append to the pool.

        The live RNG always consumes the full block — the growth
        schedule is engine-invariant — but in bounded-pool mode only a
        window of samples is kept: the pre-draw bit-generator state is
        recorded and the remainder re-materialized later from a clone
        (:meth:`_pool_refill`).  Blocks drawn while earlier blocks are
        still pending contribute nothing to the pool yet (their turn
        comes in FIFO order), so the physical pool always holds one
        contiguous logical range.
        """
        window = self._service_window
        blocks = self._service_pending.get(app_name)
        if window is None or (size <= window and not blocks):
            return self._draw_service_block(app_name, size)
        state = self._rng.bit_generator.state
        block = self._draw_service_block(app_name, size)
        if blocks:
            blocks.append([state, size, 0])
            return block[:0]
        keep = min(window, size)
        if keep < size:
            self._service_pending[app_name] = [[state, size, keep]]
        return block[:keep].copy()

    def _pool_refill(self, app_name: str) -> np.ndarray:
        """Re-materialize the next window of the pending head block.

        Replays the block's recorded draw on a cloned generator — same
        state, same call, hence bit-identical values — and returns the
        next unmaterialized slice.  The live RNG is untouched.
        """
        blocks = self._service_pending[app_name]
        state, length, drawn = blocks[0]
        bitgen = type(self._rng.bit_generator)()
        bitgen.state = state
        block = self._draw_service_block(
            app_name, int(length), rng=np.random.Generator(bitgen)
        )
        window = self._service_window or int(length)
        take = block[int(drawn) : int(drawn) + window].copy()
        drawn = int(drawn) + len(take)
        if drawn >= int(length):
            blocks.pop(0)
            if not blocks:
                del self._service_pending[app_name]
        else:
            blocks[0][2] = drawn
        return take

    def _service_time(self, app_name: str) -> float:
        """Next pre-sampled service time for ``app_name``.

        The pool grows geometrically (doubling, capped at
        ``_POOL_BLOCK_MAX`` per block) when exhausted instead of
        wrapping modulo its length — wrapping would replay the same
        sample sequence and correlate service times across a long trace.
        """
        samples = self._service_samples.get(app_name)
        if samples is None:
            samples = self._pool_grow_block(app_name, _PRESAMPLE_COUNT)
            self._service_samples[app_name] = samples
            self._service_cursor[app_name] = 0
        cursor = self._service_cursor[app_name]
        trim = self._service_trim.get(app_name, 0)
        while cursor - trim >= len(samples):
            if self._pool_pending(app_name):
                fresh = self._pool_refill(app_name)
            else:
                # Logical length = discarded prefix + physical samples
                # (no pending remainder at this point).
                fresh = self._pool_grow_block(
                    app_name, min(trim + len(samples), _POOL_BLOCK_MAX)
                )
            samples = np.concatenate([samples, fresh])
            self._service_samples[app_name] = samples
        self._service_cursor[app_name] = cursor + 1
        return float(samples[cursor - trim])

    def run(
        self,
        trace: RequestTrace,
        sample_interval_seconds: float = 1.0,
        engine: str = "auto",
        chunk_requests: Optional[int] = None,
    ) -> SimulationSeries:
        """Simulate ``trace`` and return the measurement series.

        ``engine`` selects the execution strategy: ``"event"`` forces the
        event-driven oracle, ``"vectorized"`` a fast path (the FCFS
        busy-period engine or, for keyed policies, the index-priority
        engine — unsorted traces transparently fall back to the oracle),
        ``"streaming"`` the constant-memory chunked engines (bounded
        chunks of at most ``chunk_requests`` arrivals folded into a
        :class:`~repro.cluster.streaming.StreamedSeries` — bit-identical
        decisions and RNG stream, no whole-trace arrays), and ``"auto"``
        (default) vectorizes whenever it can.  ``chunk_requests`` is
        only meaningful with ``engine="streaming"``; streamed trace
        sources (:class:`~repro.cluster.trace.StreamedTrace`) *require*
        that engine.
        """
        if sample_interval_seconds <= 0:
            raise ConfigurationError(
                f"non-positive sample interval: {sample_interval_seconds}"
            )
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {_ENGINES}"
            )
        if chunk_requests is not None:
            if isinstance(chunk_requests, bool) or not isinstance(
                chunk_requests, int
            ):
                raise ConfigurationError(
                    f"chunk_requests must be an int, got {chunk_requests!r}"
                )
            if chunk_requests <= 0:
                raise ConfigurationError(
                    f"chunk_requests must be positive, got {chunk_requests}"
                )
            if engine != "streaming":
                raise ConfigurationError(
                    "chunk_requests only applies to engine='streaming'; "
                    f"got engine={engine!r}"
                )
        if not isinstance(trace, RequestTrace) and engine != "streaming":
            raise ConfigurationError(
                "streamed trace sources require engine='streaming'; "
                f"got engine={engine!r} with {type(trace).__name__}"
            )

        if self._policy_factory is not None:
            queue = self._policy_factory.build()
        else:
            queue = FCFSPolicy()
        self._last_policy = queue

        if engine == "streaming":
            from repro.cluster.streaming import run_streaming

            if isinstance(trace, RequestTrace) and not self._time_ordered(
                trace
            ):
                raise ConfigurationError(
                    "engine='streaming' requires a time-ordered trace"
                )
            return run_streaming(
                self, queue, trace, sample_interval_seconds, chunk_requests
            )

        if self._control_active():
            # The control engines subsume the chaos dynamics (they take
            # the fault timeline and retry policy too), so an active
            # control plane routes here regardless of fault config.  An
            # inert plane must NOT: attaching ``ControlPlane()`` keeps
            # today's engines and their benchmark hashes bit for bit.
            from repro.cluster.control_engine import (
                run_control_event,
                run_control_vectorized,
            )

            if not isinstance(queue, KeyedPolicy):
                raise ConfigurationError(
                    "the control plane requires a keyed policy (one "
                    "built on repro.cluster.policy_keys.PolicyKey); got "
                    f"{type(queue).__name__}"
                )
            timeline = self._fault_timeline(trace)
            retry = self._retry if self._retry is not None else RetryPolicy()
            if engine != "event" and self._time_ordered(trace):
                return run_control_vectorized(
                    self, queue, trace, sample_interval_seconds,
                    timeline, retry, self._control,
                )
            return run_control_event(
                self, queue, trace, sample_interval_seconds,
                timeline, retry, self._control,
            )

        if self._chaos_active():
            # Fault injection / retry changes the dynamics, so inert
            # configurations must NOT route here: a no-op schedule plus
            # a no-op retry policy reproduces today's engines (and their
            # benchmark hashes) bit for bit by construction.
            from repro.cluster.chaos_engine import (
                run_chaos_event,
                run_chaos_vectorized,
            )

            if not isinstance(queue, KeyedPolicy):
                raise ConfigurationError(
                    "fault injection requires a keyed policy (one built "
                    "on repro.cluster.policy_keys.PolicyKey); got "
                    f"{type(queue).__name__}"
                )
            timeline = self._fault_timeline(trace)
            retry = self._retry if self._retry is not None else RetryPolicy()
            if engine != "event" and self._time_ordered(trace):
                return run_chaos_vectorized(
                    self, queue, trace, sample_interval_seconds,
                    timeline, retry,
                )
            return run_chaos_event(
                self, queue, trace, sample_interval_seconds, timeline, retry
            )

        if engine != "event":
            if self._vectorizable(queue, trace):
                return run_vectorized(self, trace, sample_interval_seconds)
            if self._keyed_vectorizable(queue, trace):
                return run_keyed(self, queue, trace, sample_interval_seconds)

        events = EventQueue()
        busy = 0
        dropped = 0
        drop_times: List[float] = []
        latencies: List[float] = []
        completion_times: List[float] = []
        sample_times: List[float] = []
        queue_series: List[int] = []
        busy_series: List[int] = []

        def start_service(request: QueuedRequest, now: float) -> None:
            nonlocal busy
            busy += 1
            service = self._service_time(request.app_name)
            done = now + service
            events.push(Event(done, on_completion, (request, done)))

        # Queued requests are observed by push; immediate starts are
        # observed on arrival so coverage accounting (e.g. SJF
        # unknown_apps) sees every admitted application.  External
        # policies written against the pre-hook protocol may not
        # implement observe_app — tolerate its absence.
        observe_app = getattr(queue, "observe_app", lambda app_name: None)

        def on_arrival(payload) -> None:
            request, now = payload
            if busy < self._max_instances:
                observe_app(request.app_name)
                start_service(request, now)
            elif len(queue) < self._queue_depth:
                queue.push(request)
            else:
                nonlocal dropped
                dropped += 1
                drop_times.append(now)

        def on_completion(payload) -> None:
            nonlocal busy
            request, now = payload
            busy -= 1
            latencies.append(now - request.arrival)
            completion_times.append(now)
            if len(queue):
                start_service(queue.pop(), now)

        def on_sample(payload) -> None:
            now = payload
            sample_times.append(now)
            queue_series.append(len(queue))
            busy_series.append(busy)

        arrivals = []
        for sequence, (arrival, app_name) in enumerate(
            zip(trace.arrival_seconds, trace.app_names)
        ):
            request = QueuedRequest(
                arrival=float(arrival), app_name=app_name, sequence=sequence
            )
            arrivals.append(
                Event(float(arrival), on_arrival, (request, float(arrival)))
            )
        events.push_many(arrivals)
        ticks = sample_tick_times(
            trace.duration_seconds, sample_interval_seconds
        )
        events.push_many(
            Event(tick, on_sample, tick) for tick in ticks.tolist()
        )

        while events:
            events.pop().fire()

        return SimulationSeries(
            sample_times=np.array(sample_times),
            queue_depth=np.array(queue_series),
            busy_instances=np.array(busy_series),
            completed_latency_seconds=np.array(latencies),
            completed_times=np.array(completion_times),
            dropped_requests=dropped,
            total_requests=len(trace),
            dropped_times=np.array(drop_times),
            dropped_reasons=np.zeros(len(drop_times), dtype=np.int8),
        )

    def _chaos_active(self) -> bool:
        """Whether faults or the retry layer perturb this simulation."""
        return (self._faults is not None and self._faults.active) or (
            self._retry is not None and self._retry.active
        )

    def _control_active(self) -> bool:
        """Whether the closed-loop control plane is engaged."""
        return self._control is not None and self._control.active

    def _fault_timeline(self, trace: RequestTrace) -> FaultTimeline:
        """Materialize the fault schedule over the trace horizon."""
        if self._faults is None:
            return FaultTimeline.empty(self._max_instances)
        return self._faults.materialize(
            self._max_instances, trace.duration_seconds
        )

    @staticmethod
    def _time_ordered(trace: RequestTrace) -> bool:
        arrivals = trace.arrival_seconds
        return len(arrivals) == 0 or bool(np.all(np.diff(arrivals) >= 0))

    @staticmethod
    def _vectorizable(queue, trace: RequestTrace) -> bool:
        """FCFS over a time-ordered trace is what the fast engine models.

        Exactly :class:`FCFSPolicy`, not subclasses: the busy-period
        engine has no ``observe_app`` calls, so a subclass carrying a
        coverage hook routes to the keyed engine instead (same results,
        the hook honoured).
        """
        return type(queue) is FCFSPolicy and RackSimulation._time_ordered(
            trace
        )

    @staticmethod
    def _keyed_vectorizable(queue, trace: RequestTrace) -> bool:
        """Any priority-key policy routes to the index-priority engine."""
        return isinstance(queue, KeyedPolicy) and RackSimulation._time_ordered(
            trace
        )
