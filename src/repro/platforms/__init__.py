"""Compute platforms evaluated in the paper (Table 2).

Two families:

- :class:`~repro.platforms.base.AnalyticalPlatform` — roofline-style
  models for the CPU, GPU, ARM, and mobile-GPU platforms.  This mirrors
  the paper's methodology: non-DSA platform numbers come from an
  analytical model substituting the measured compute latency.
- :class:`~repro.platforms.dsa.DSAPlatform` — backed by the compiler and
  cycle-level simulator; used for both the ASIC DSA (DSCS) and the FPGA
  implementations of the DSA (Alveo U280 and SmartSSD), which run the same
  architecture at lower clocks with fewer PEs.

:mod:`~repro.platforms.registry` instantiates the Table 2 lineup.
"""

from repro.platforms.base import AnalyticalPlatform, ComputePlatform, PlatformKind
from repro.platforms.dsa import DSAPlatform
from repro.platforms.registry import (
    PLATFORM_BUILDERS,
    baseline_cpu,
    dscs_dsa,
    fpga_u280,
    gpu_2080ti,
    ns_arm,
    ns_fpga_smartssd,
    ns_mobile_gpu,
    table2_platforms,
)

__all__ = [
    "AnalyticalPlatform",
    "ComputePlatform",
    "DSAPlatform",
    "PLATFORM_BUILDERS",
    "PlatformKind",
    "baseline_cpu",
    "dscs_dsa",
    "fpga_u280",
    "gpu_2080ti",
    "ns_arm",
    "ns_fpga_smartssd",
    "ns_mobile_gpu",
    "table2_platforms",
]
