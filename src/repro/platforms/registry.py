"""The Table 2 platform lineup.

Traditional platforms (remote storage over the network):

- ``Baseline (CPU)`` — EC2 c5.4xlarge-class Xeon Platinum 8275CL.
- ``GPU`` — NVIDIA RTX 2080 Ti (250 W) in a compute node.
- ``FPGA`` — Xilinx Alveo U280 hosting the DSA RTL in a compute node.

Conventional near-storage platforms:

- ``NS-ARM`` — quad-core ARM Cortex-A57 (the paper substitutes A57 for the
  A53 in commercial CSDs).
- ``NS-Mobile-GPU`` — NVIDIA Jetson TX2.
- ``NS-FPGA`` — Samsung SmartSSD (Kintex KU15P-class fabric).

Proposed:

- ``DSCS-Serverless`` — the 128x128/4MB/DDR5 DSA ASIC at 14 nm inside the
  DSCS-Drive.

Sustained-throughput figures are batch-1 inference numbers (peak silicon
FLOPS derated by realistic utilisation); sources are the public spec
sheets the paper cites plus its qualitative findings (GPU underutilised at
batch 1, FPGA resource/frequency-bound, ARM slightly under the Xeon).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.accelerator.config import DDR4, DDR5, DSAConfig
from repro.platforms.base import AnalyticalPlatform, ComputePlatform, PlatformKind
from repro.storage.pcie import PCIeLink
from repro.units import GFLOP, GHZ, MB, MS


def baseline_cpu() -> AnalyticalPlatform:
    """Intel Xeon Platinum 8275CL (c5.4xlarge, 16 vCPU)."""
    return AnalyticalPlatform(
        name="Baseline (CPU)",
        kind=PlatformKind.TRADITIONAL,
        effective_flops=150 * GFLOP,
        memory_bandwidth_bytes_per_s=90e9,
        per_op_overhead_seconds=8e-6,
        active_power_watts=180.0,
        idle_power_watts=65.0,
        capex_usd=6500.0,
    )


def gpu_2080ti() -> AnalyticalPlatform:
    """NVIDIA RTX 2080 Ti in a compute node (ONNX Runtime + CUDA)."""
    return AnalyticalPlatform(
        name="GPU",
        kind=PlatformKind.TRADITIONAL,
        # 13.4 TFLOPS peak; ~8% achievable at batch 1 in serving.
        effective_flops=1100 * GFLOP,
        memory_bandwidth_bytes_per_s=616e9,
        per_op_overhead_seconds=8e-6,  # kernel launches
        driver_overhead_seconds=9 * MS,  # CUDA context + runtime dispatch
        device_link=PCIeLink(name="pcie_gen3_x16", bandwidth_bytes_per_s=12.0e9),
        active_power_watts=250.0,
        idle_power_watts=55.0,
        capex_usd=6500.0 + 1200.0,
        max_batch_speedup=12.0,
        batch_half_saturation=6.0,
    )


def fpga_u280() -> "DSAPlatform":
    """Xilinx Alveo U280 hosting the DSA RTL in a compute node.

    The fabric fits a 64x64 array at ~250 MHz; XRT dispatch adds tens of
    milliseconds — together these put the traditional-FPGA platform
    slightly *below* the CPU baseline end to end (paper Fig. 9).
    """
    from repro.platforms.dsa import DSAPlatform

    return DSAPlatform(
        name="FPGA",
        kind=PlatformKind.TRADITIONAL,
        dsa_config=DSAConfig(
            pe_rows=64,
            pe_cols=64,
            buffer_bytes=4 * MB,
            memory=DDR4,
            frequency_hz=0.25 * GHZ,
            tech_node_nm=14,
        ),
        driver_overhead_seconds=30 * MS,  # XRT + OpenCL dispatch
        device_link=PCIeLink(name="pcie_gen3_x16", bandwidth_bytes_per_s=12.0e9),
        fixed_power_watts=100.0,
        idle_power_watts=25.0,
        capex_usd=6500.0 + 7000.0,
        compute_derate=1.3,  # fabric routing/timing inefficiency
    )


def ns_arm() -> AnalyticalPlatform:
    """Quad-core ARM Cortex-A57 inside the storage node."""
    return AnalyticalPlatform(
        name="NS-ARM",
        kind=PlatformKind.NEAR_STORAGE,
        effective_flops=42 * GFLOP,
        memory_bandwidth_bytes_per_s=25e9,
        per_op_overhead_seconds=12e-6,
        active_power_watts=15.0,
        idle_power_watts=4.0,
        capex_usd=250.0,
    )


def ns_mobile_gpu() -> AnalyticalPlatform:
    """NVIDIA Jetson TX2 (256-core Pascal) near the storage."""
    return AnalyticalPlatform(
        name="NS-Mobile-GPU",
        kind=PlatformKind.NEAR_STORAGE,
        effective_flops=75 * GFLOP,
        memory_bandwidth_bytes_per_s=58e9,
        per_op_overhead_seconds=10e-6,
        driver_overhead_seconds=4 * MS,
        active_power_watts=15.0,
        idle_power_watts=5.0,
        capex_usd=400.0,
        max_batch_speedup=6.0,
    )


def ns_fpga_smartssd() -> "DSAPlatform":
    """Samsung SmartSSD: the DSA RTL on the drive's KU15P-class FPGA."""
    from repro.platforms.dsa import DSAPlatform

    return DSAPlatform(
        name="NS-FPGA",
        kind=PlatformKind.NEAR_STORAGE,
        dsa_config=DSAConfig(
            pe_rows=64,
            pe_cols=64,
            buffer_bytes=2 * MB,
            memory=DDR4,
            frequency_hz=0.2 * GHZ,
            tech_node_nm=14,
        ),
        driver_overhead_seconds=6 * MS,  # on-drive OpenCL/XRT dispatch
        fixed_power_watts=25.0,
        idle_power_watts=8.0,
        capex_usd=1500.0,
        compute_derate=1.9,
    )


def dscs_dsa() -> "DSAPlatform":
    """The proposed in-storage DSA ASIC (128x128, 4 MB, DDR5, 14 nm)."""
    from repro.platforms.dsa import DSAPlatform

    return DSAPlatform(
        name="DSCS-Serverless",
        kind=PlatformKind.DSCS,
        dsa_config=DSAConfig(
            pe_rows=128,
            pe_cols=128,
            buffer_bytes=4 * MB,
            memory=DDR5,
            frequency_hz=1.0 * GHZ,
            tech_node_nm=14,
        ),
        driver_overhead_seconds=1.5 * MS,  # OpenCL driver, single syscall
        idle_power_watts=1.0,
        capex_usd=1200.0,  # DSCS-Drive: SmartSSD-class drive + small ASIC
    )


PLATFORM_BUILDERS: Dict[str, Callable[[], ComputePlatform]] = {
    "Baseline (CPU)": baseline_cpu,
    "GPU": gpu_2080ti,
    "FPGA": fpga_u280,
    "NS-ARM": ns_arm,
    "NS-Mobile-GPU": ns_mobile_gpu,
    "NS-FPGA": ns_fpga_smartssd,
    "DSCS-Serverless": dscs_dsa,
}


def table2_platforms() -> List[ComputePlatform]:
    """Instantiate the full Table 2 lineup in presentation order."""
    return [builder() for builder in PLATFORM_BUILDERS.values()]
