"""DSA-backed platforms: the ASIC DSCS accelerator and FPGA variants.

Both the in-storage ASIC and the two FPGA implementations (Alveo U280 in a
compute node, SmartSSD near-storage) run the *same* architecture, so all
three are modeled by compiling the graph with the appropriate
:class:`~repro.accelerator.config.DSAConfig` and cycle-simulating it —
exactly the paper's methodology (§6.1: the simulator is validated against
the SmartSSD FPGA implementation within 10%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.accelerator.config import DSAConfig
from repro.accelerator.power import PowerModel
from repro.accelerator.simulator import ExecutionReport
from repro.compiler.executable import compile_graph
from repro.errors import ConfigurationError
from repro.models.graph import Graph
from repro.platforms.base import ComputePlatform, PlatformKind
from repro.storage.pcie import PCIeLink


@dataclass
class DSAPlatform(ComputePlatform):
    """A platform whose compute is the cycle-simulated DSA."""

    name: str = "dscs_dsa"
    kind: PlatformKind = PlatformKind.DSCS
    dsa_config: DSAConfig = field(default_factory=DSAConfig)
    driver_overhead_seconds: float = 1.5e-3
    device_link: Optional[PCIeLink] = None
    # For FPGA implementations the board's measured power dominates; when
    # ``fixed_power_watts`` is None the ASIC power model is used instead.
    fixed_power_watts: Optional[float] = None
    idle_power_watts: float = 2.0
    capex_usd: float = 1000.0
    # FPGA fabrics clock the same RTL lower and add routing inefficiency.
    compute_derate: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_derate < 1.0:
            raise ConfigurationError(
                f"{self.name}: derate must be >= 1, got {self.compute_derate}"
            )
        self._cache: Dict[Tuple[str, int], ExecutionReport] = {}
        self._power_model = PowerModel(self.dsa_config)

    def _report(self, graph: Graph, batch: int) -> ExecutionReport:
        key = (graph.name, batch)
        if key not in self._cache:
            batched = graph.with_batch(batch)
            # Shared program cache + packed engine: platform instances that
            # agree on tiling (and repeated context builds) compile once.
            executable = compile_graph(batched, self.dsa_config)
            self._cache[key] = executable.simulate(engine="packed")
        return self._cache[key]

    def compute_latency_seconds(self, graph: Graph, batch: int = 1) -> float:
        if batch <= 0:
            raise ConfigurationError(f"batch must be positive, got {batch}")
        return self._report(graph, batch).latency_s * self.compute_derate

    def compute_energy_joules(self, graph: Graph, batch: int = 1) -> float:
        report = self._report(graph, batch)
        if self.fixed_power_watts is not None:
            return self.fixed_power_watts * report.latency_s * self.compute_derate
        return report.energy_j

    @property
    def active_power_watts(self) -> float:  # type: ignore[override]
        """Representative active power (fixed for FPGAs, modeled for ASIC)."""
        if self.fixed_power_watts is not None:
            return self.fixed_power_watts
        # Leakage + a nominal dynamic figure at ~20% utilisation.
        leak = self._power_model.leakage_watts()
        cfg = self.dsa_config
        from repro.accelerator.scaling import scale_power

        dynamic_45 = cfg.num_pes * 3.0e-12 * cfg.frequency_hz * 0.2
        return leak + scale_power(dynamic_45, cfg.tech_node_nm)

    def execution_report(self, graph: Graph, batch: int = 1) -> ExecutionReport:
        """Expose the underlying cycle-simulation report."""
        return self._report(graph, batch)
