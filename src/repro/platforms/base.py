"""Compute-platform abstraction and the analytical (roofline) family.

A platform answers three questions for a model graph: how long does one
inference take, how much power does it draw while doing it, and what does
the hardware cost.  Where the platform sits (remote compute node vs inside
the storage drive) is what determines the *data path* — that part lives in
the execution models (`repro.core`), not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.models.graph import Graph
from repro.storage.pcie import PCIeLink
from repro.units import GFLOP


class PlatformKind(enum.Enum):
    """Where the platform lives in the datacenter (Table 2 grouping)."""

    TRADITIONAL = "traditional"  # remote compute node, data over network
    NEAR_STORAGE = "near_storage"  # inside/adjacent to the storage node
    DSCS = "dscs"  # the paper's in-storage DSA


class ComputePlatform:
    """Interface every evaluated platform implements."""

    name: str
    kind: PlatformKind
    active_power_watts: float
    idle_power_watts: float
    capex_usd: float
    # Per-invocation software cost to dispatch onto the device (driver,
    # runtime, kernel-launch amortisation). Zero for plain CPUs.
    driver_overhead_seconds: float
    # Host->device link for discrete accelerators (None when compute reads
    # host memory directly, e.g. CPUs, or when the device is in-storage).
    device_link: Optional[PCIeLink]

    def compute_latency_seconds(self, graph: Graph, batch: int = 1) -> float:
        """Pure device-compute latency for one inference of ``graph``."""
        raise NotImplementedError

    def compute_energy_joules(self, graph: Graph, batch: int = 1) -> float:
        """Device energy for one inference."""
        latency = self.compute_latency_seconds(graph, batch)
        return self.active_power_watts * latency

    def device_copy_seconds(self, num_bytes: int) -> float:
        """Host<->device staging cost (e.g. cudaMemcpy), if applicable."""
        if self.device_link is None:
            return 0.0
        return self.device_link.transfer_seconds(num_bytes)

    @property
    def is_accelerator(self) -> bool:
        """True when dispatch crosses a device driver."""
        return self.driver_overhead_seconds > 0


@dataclass
class AnalyticalPlatform(ComputePlatform):
    """Roofline model: max(compute-bound, memory-bound) + per-op overhead.

    ``effective_flops`` is the *sustained* batch-1 inference throughput —
    peak silicon FLOPS already derated by achievable utilisation, so the
    model stays honest about batch-1 serverless behaviour.  Batching
    recovers utilisation up to ``max_batch_speedup`` with diminishing
    returns (weight reuse amortised, paper Fig. 14).
    """

    name: str = "cpu"
    kind: PlatformKind = PlatformKind.TRADITIONAL
    effective_flops: float = 150 * GFLOP
    memory_bandwidth_bytes_per_s: float = 60e9
    per_op_overhead_seconds: float = 10e-6
    driver_overhead_seconds: float = 0.0
    device_link: Optional[PCIeLink] = None
    active_power_watts: float = 180.0
    idle_power_watts: float = 60.0
    capex_usd: float = 6000.0
    flops_dtype_bytes: int = 4  # fp32 execution on general-purpose cores
    max_batch_speedup: float = 4.0
    batch_half_saturation: float = 8.0

    def __post_init__(self) -> None:
        if self.effective_flops <= 0:
            raise ConfigurationError(f"{self.name}: non-positive FLOPS")
        if self.memory_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(f"{self.name}: non-positive bandwidth")
        if self.per_op_overhead_seconds < 0 or self.driver_overhead_seconds < 0:
            raise ConfigurationError(f"{self.name}: negative overhead")

    def _batch_efficiency(self, batch: int) -> float:
        """Per-sample speedup factor from batching (>=1, saturating)."""
        if batch <= 1:
            return 1.0
        gain = 1.0 + (self.max_batch_speedup - 1.0) * (batch - 1) / (
            batch - 1 + self.batch_half_saturation
        )
        return gain

    def compute_latency_seconds(self, graph: Graph, batch: int = 1) -> float:
        if batch <= 0:
            raise ConfigurationError(f"batch must be positive, got {batch}")
        stats = graph.stats()
        flops = stats.total_flops * batch
        # Weights are touched once per batch; activations scale with batch.
        weight_traffic = stats.weight_bytes * self.flops_dtype_bytes
        activation_traffic = (
            (stats.input_bytes + stats.output_bytes) * self.flops_dtype_bytes * batch
        )
        compute_bound = flops / (self.effective_flops * self._batch_efficiency(batch))
        memory_bound = (
            weight_traffic + activation_traffic
        ) / self.memory_bandwidth_bytes_per_s
        op_overhead = stats.num_ops * self.per_op_overhead_seconds
        return max(compute_bound, memory_bound) + op_overhead
