"""Network latency model: tail-heavy RTT plus bandwidth-limited transfer.

Calibrated against the paper's Fig. 3 (AWS S3 read CDFs): multi-megabyte
object reads land in the 0.02–0.2 s band, and the average gap between the
median and the 99th percentile is ~110% (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.distributions import ShiftedLognormal
from repro.units import MB_DEC, MS

# Default p99/median ratio from the paper's tail characterisation (§2.2):
# "average latency difference between the median and the 99th percentile is
# a factor of 110%" -> p99 = 2.1x median.
DEFAULT_TAIL_RATIO = 2.1


@dataclass(frozen=True)
class NetworkModel:
    """One network hop between a compute node and a storage node."""

    rtt: ShiftedLognormal = field(
        default_factory=lambda: ShiftedLognormal(
            floor=2 * MS, median_total=12 * MS, p99_over_median=DEFAULT_TAIL_RATIO
        )
    )
    bandwidth_bytes_per_s: float = 100 * MB_DEC

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(
                f"non-positive bandwidth: {self.bandwidth_bytes_per_s}"
            )

    def transfer_seconds(self, num_bytes: int) -> float:
        """Median serialization delay of a payload on the link."""
        if num_bytes < 0:
            raise ConfigurationError(f"negative payload: {num_bytes}")
        return num_bytes / self.bandwidth_bytes_per_s

    def sample_multiplier(self, rng: np.random.Generator) -> float:
        """One congestion multiplier (median 1, p99 = tail ratio).

        Queueing and congestion slow both connection setup and streaming,
        so the whole access scales by one draw — and all accesses made by
        one serverless request share the draw (congestion persists across
        a request's lifetime).  This is what makes remote-storage reads
        tail-heavy at *every* payload size (paper Fig. 3).
        """
        return float(self.rtt.sample(rng)) / self.rtt.median()

    def sample_multipliers(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Vectorised :meth:`sample_multiplier`."""
        return self.rtt.sample_many(rng, count) / self.rtt.median()

    def latency_with_multiplier(self, num_bytes: int, multiplier) -> float:
        """Network time for a payload under a given congestion multiplier."""
        return self.median_latency(num_bytes) * multiplier

    def sample_latency(self, num_bytes: int, rng: np.random.Generator) -> float:
        """One request's network time with a fresh congestion draw."""
        return self.latency_with_multiplier(num_bytes, self.sample_multiplier(rng))

    def sample_latency_many(
        self, num_bytes: int, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Vectorised :meth:`sample_latency` (independent draws)."""
        return self.median_latency(num_bytes) * self.sample_multipliers(rng, count)

    def median_latency(self, num_bytes: int) -> float:
        """Analytic median network time for a payload."""
        return self.rtt.median() + self.transfer_seconds(num_bytes)

    def with_tail_ratio(self, p99_over_median: float) -> "NetworkModel":
        """Copy with a different tail ratio (Fig. 15 sensitivity sweep)."""
        return NetworkModel(
            rtt=ShiftedLognormal(
                floor=self.rtt.floor,
                median_total=self.rtt.median_total,
                p99_over_median=p99_over_median,
            ),
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
        )
