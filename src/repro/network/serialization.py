"""Protobuf-style serialisation cost model.

Every S3-style storage RPC marshals its request and unmarshals its
response; the paper (§3.1) highlights this as expensive enough that prior
work built hardware accelerators for it [58].  Costs scale with payload
size plus a fixed per-message overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MB_DEC, US


@dataclass(frozen=True)
class SerializationModel:
    """Marshal/unmarshal cost for RPC payloads on a server-class core."""

    per_message_seconds: float = 25 * US
    seconds_per_byte: float = 1.0 / (1.8 * 1000 * MB_DEC)  # ~1.8 GB/s protobuf

    def __post_init__(self) -> None:
        if self.per_message_seconds < 0 or self.seconds_per_byte < 0:
            raise ConfigurationError("negative serialization cost")

    def serialize_seconds(self, num_bytes: int) -> float:
        """Cost to marshal a payload of ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigurationError(f"negative payload: {num_bytes}")
        return self.per_message_seconds + num_bytes * self.seconds_per_byte

    def deserialize_seconds(self, num_bytes: int) -> float:
        """Cost to unmarshal a payload (same cost shape as marshal)."""
        return self.serialize_seconds(num_bytes)

    def round_trip_seconds(self, request_bytes: int, response_bytes: int) -> float:
        """Marshal request + unmarshal response on the caller, plus the
        mirror pair on the callee."""
        caller = self.serialize_seconds(request_bytes) + self.deserialize_seconds(
            response_bytes
        )
        callee = self.deserialize_seconds(request_bytes) + self.serialize_seconds(
            response_bytes
        )
        return caller + callee
