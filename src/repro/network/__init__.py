"""Datacenter network and RPC substrate.

Traditional serverless functions reach disaggregated storage through an
RPC stack: protobuf serialisation, system calls, NIC transfer, and the
datacenter fabric.  This package models each of those costs so the
end-to-end latency decomposition (paper Fig. 4/10) has real components:

- :class:`~repro.network.latency.NetworkModel` — RTT with lognormal tail
  plus bandwidth-dependent transfer time, calibrated to the S3 CDFs of
  Fig. 3.
- :class:`~repro.network.serialization.SerializationModel` — protobuf
  marshal/unmarshal cost (the overhead prior work builds accelerators
  for, paper §3.1 [58]).
- :class:`~repro.network.rpc.RPCStack` — composes both with syscall
  overheads into request/response latencies.
"""

from repro.network.latency import NetworkModel
from repro.network.rpc import RPCStack
from repro.network.serialization import SerializationModel

__all__ = ["NetworkModel", "RPCStack", "SerializationModel"]
