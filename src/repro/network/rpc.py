"""The RPC stack a serverless function crosses to reach remote storage.

Composes the network hop, protobuf serialisation, and kernel syscall
overheads into the read/write latencies of the traditional execution path
(paper §2.1): *"an AWS S3 read request is translated into a RPC that
incurs the network latency...; the request further requires a protobuf
deserialization and a read system call"*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.network.latency import NetworkModel
from repro.network.serialization import SerializationModel
from repro.units import US

# Control-plane request messages are small.
_REQUEST_BYTES = 512


@dataclass(frozen=True)
class RPCStack:
    """Request/response RPC latency model between two nodes."""

    network: NetworkModel = field(default_factory=NetworkModel)
    serialization: SerializationModel = field(default_factory=SerializationModel)
    syscall_seconds: float = 8 * US  # kernel entry/exit + VFS dispatch
    syscalls_per_request: int = 4

    def __post_init__(self) -> None:
        if self.syscall_seconds < 0:
            raise ConfigurationError(f"negative syscall cost: {self.syscall_seconds}")
        if self.syscalls_per_request < 0:
            raise ConfigurationError(
                f"negative syscall count: {self.syscalls_per_request}"
            )

    def _software_seconds(self, payload_bytes: int) -> float:
        marshal = self.serialization.round_trip_seconds(_REQUEST_BYTES, payload_bytes)
        syscalls = self.syscall_seconds * self.syscalls_per_request
        return marshal + syscalls

    def sample_request(
        self, payload_bytes: int, rng: np.random.Generator
    ) -> float:
        """One RPC carrying ``payload_bytes`` of data (either direction)."""
        if payload_bytes < 0:
            raise ConfigurationError(f"negative payload: {payload_bytes}")
        return self.network.sample_latency(payload_bytes, rng) + self._software_seconds(
            payload_bytes
        )

    def sample_request_many(
        self, payload_bytes: int, rng: np.random.Generator, count: int
    ):
        """Vectorised :meth:`sample_request` (returns an ndarray)."""
        if payload_bytes < 0:
            raise ConfigurationError(f"negative payload: {payload_bytes}")
        return self.network.sample_latency_many(
            payload_bytes, rng, count
        ) + self._software_seconds(payload_bytes)

    def request_with_multiplier(self, payload_bytes: int, multiplier):
        """RPC latency under a given (shared) congestion multiplier."""
        if payload_bytes < 0:
            raise ConfigurationError(f"negative payload: {payload_bytes}")
        return self.network.latency_with_multiplier(
            payload_bytes, multiplier
        ) + self._software_seconds(payload_bytes)

    def median_request(self, payload_bytes: int) -> float:
        """Analytic median RPC latency for a payload."""
        return self.network.median_latency(payload_bytes) + self._software_seconds(
            payload_bytes
        )

    def with_tail_ratio(self, p99_over_median: float) -> "RPCStack":
        """Copy with the network tail ratio replaced (Fig. 15 sweep)."""
        return RPCStack(
            network=self.network.with_tail_ratio(p99_over_median),
            serialization=self.serialization,
            syscall_seconds=self.syscall_seconds,
            syscalls_per_request=self.syscalls_per_request,
        )
