"""Program disassembler and per-op statistics.

Developer tooling for the compiler: dump an instruction stream as text and
summarise work per model operator — the DSA equivalent of an object-file
inspector, used when diagnosing why a layer under-utilises the array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.accelerator.isa import (
    GemmTile,
    Halt,
    Instruction,
    LoadTile,
    Program,
    StoreTile,
    Sync,
    VectorOp,
)


def format_instruction(instruction: Instruction) -> str:
    """One-line textual form of an instruction."""
    if isinstance(instruction, LoadTile):
        return (
            f"LOAD   {instruction.destination.value:14s} "
            f"{instruction.num_bytes:>10,d} B   ; {instruction.op_name}"
        )
    if isinstance(instruction, StoreTile):
        return f"STORE  dram           {instruction.num_bytes:>10,d} B   ; {instruction.op_name}"
    if isinstance(instruction, GemmTile):
        return (
            f"GEMM   m={instruction.m:<6d} n={instruction.n:<5d} "
            f"k={instruction.k:<5d}        ; {instruction.op_name}"
        )
    if isinstance(instruction, VectorOp):
        fused = "fused" if instruction.fused else "dram "
        return (
            f"VOP    {fused} x{instruction.cost_per_element} "
            f"{instruction.elements:>12,d} el  ; {instruction.op_name}"
        )
    if isinstance(instruction, Sync):
        return "SYNC"
    if isinstance(instruction, Halt):
        return "HALT"
    return repr(instruction)  # pragma: no cover - defensive


def disassemble(program: Program, limit: int = 0) -> str:
    """Full textual dump of ``program`` (``limit`` > 0 truncates)."""
    lines = [f"; program {program.model_name} — {len(program)} instructions"]
    for index, instruction in enumerate(program):
        if limit and index >= limit:
            lines.append(f"; ... {len(program) - limit} more instructions")
            break
        lines.append(f"{index:6d}: {format_instruction(instruction)}")
    return "\n".join(lines)


@dataclass(frozen=True)
class OpStats:
    """Aggregate instruction statistics for one model operator."""

    op_name: str
    gemm_tiles: int
    macs: int
    vector_element_ops: int
    load_bytes: int
    store_bytes: int
    syncs: int

    @property
    def dram_bytes(self) -> int:
        return self.load_bytes + self.store_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per DRAM byte for this op (0 when no traffic)."""
        if self.dram_bytes == 0:
            return 0.0
        return self.macs / self.dram_bytes


def per_op_stats(program: Program) -> Dict[str, OpStats]:
    """Summarise the instruction stream per model operator."""
    tallies: Dict[str, Dict[str, int]] = {}

    def tally(name: str) -> Dict[str, int]:
        return tallies.setdefault(
            name,
            {
                "gemm_tiles": 0,
                "macs": 0,
                "vector": 0,
                "load": 0,
                "store": 0,
                "syncs": 0,
            },
        )

    for instruction in program:
        if isinstance(instruction, GemmTile):
            t = tally(instruction.op_name)
            t["gemm_tiles"] += 1
            t["macs"] += instruction.macs
        elif isinstance(instruction, VectorOp):
            t = tally(instruction.op_name)
            t["vector"] += instruction.elements * instruction.cost_per_element
        elif isinstance(instruction, LoadTile):
            tally(instruction.op_name)["load"] += instruction.num_bytes
        elif isinstance(instruction, StoreTile):
            tally(instruction.op_name)["store"] += instruction.num_bytes
        elif isinstance(instruction, Sync):
            tally(instruction.op_name)["syncs"] += 1

    return {
        name: OpStats(
            op_name=name,
            gemm_tiles=t["gemm_tiles"],
            macs=t["macs"],
            vector_element_ops=t["vector"],
            load_bytes=t["load"],
            store_bytes=t["store"],
            syncs=t["syncs"],
        )
        for name, t in tallies.items()
    }


def hottest_ops(program: Program, top: int = 10) -> List[OpStats]:
    """The ``top`` operators by MAC count."""
    stats = sorted(per_op_stats(program).values(), key=lambda s: -s.macs)
    return stats[:top]
