"""Vector Processing Unit timing model.

SIMD engine (paper §4.1): ``lanes`` vector engines execute one element-op
per lane per cycle.  Activation functions and normalisations cost several
element-ops per element (transcendental approximation steps); the op layer
already folds that into ``cost_per_element``.

The VPU shares the multi-bank output buffer with the MPU, so fused vector
ops read MPU results without a DRAM round trip — modeled as zero DMA for
fused :class:`~repro.accelerator.isa.VectorOp` instructions.
"""

from __future__ import annotations

import math

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import VectorOp

# Per-pass pipeline setup (instruction decode, address generation).
PASS_OVERHEAD_CYCLES = 8


class VectorProcessingUnit:
    """Timing model of the SIMD VPU for a given design point."""

    def __init__(self, config: DSAConfig) -> None:
        self._config = config

    @property
    def config(self) -> DSAConfig:
        return self._config

    def op_cycles(self, op: VectorOp) -> int:
        """Total cycles to execute a vector instruction."""
        if op.elements == 0:
            return PASS_OVERHEAD_CYCLES
        element_ops = op.elements * op.cost_per_element
        return PASS_OVERHEAD_CYCLES + math.ceil(element_ops / self._config.lanes)

    def throughput_elements_per_cycle(self) -> int:
        """Peak single-cost element throughput."""
        return self._config.lanes
