"""Analytical power/energy model for the DSA (45 nm baseline).

Follows the paper's methodology split: logic-cell energy from synthesis-
style per-op constants, on-chip memory via a CACTI-like capacity-dependent
per-access energy, DRAM interface energy per byte from the memory spec, and
leakage proportional to die area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.area import AreaModel
from repro.accelerator.config import DSAConfig
from repro.accelerator.scaling import scale_power
from repro.units import MB

# Energy constants at 45 nm.
_MAC_ENERGY_PJ = 3.0  # one int8 MAC including operand forwarding
_VECTOR_ENERGY_PJ = 1.2  # one SIMD element-op (ALU/SFU average)
_SRAM_BASE_PJ_PER_BYTE = 0.6  # per-byte access for a small (<=1 MB) macro
_SRAM_SIZE_EXPONENT = 0.25  # access energy grows ~capacity^0.25 (CACTI-P)
_LEAKAGE_W_PER_MM2 = 0.012  # 45 nm high-performance cell leakage


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent per component over one execution."""

    mac_j: float
    vector_j: float
    sram_j: float
    dram_j: float
    leakage_j: float

    @property
    def total_j(self) -> float:
        return self.mac_j + self.vector_j + self.sram_j + self.dram_j + self.leakage_j


class PowerModel:
    """Energy/power estimator for :class:`DSAConfig` design points."""

    def __init__(self, config: DSAConfig) -> None:
        self._config = config
        self._area = AreaModel(config)

    def sram_pj_per_byte(self) -> float:
        """Capacity-dependent scratchpad access energy (45 nm)."""
        size_mb = max(self._config.buffer_bytes / MB, 0.125)
        return _SRAM_BASE_PJ_PER_BYTE * size_mb**_SRAM_SIZE_EXPONENT

    def leakage_watts(self) -> float:
        """Static power at the configured node."""
        # Area model already scales to the node; leakage density scales with
        # the power factor relative to the 45 nm area.
        cfg = self._config
        area_45 = AreaModel(
            DSAConfig(
                pe_rows=cfg.pe_rows,
                pe_cols=cfg.pe_cols,
                buffer_bytes=cfg.buffer_bytes,
                memory=cfg.memory,
                frequency_hz=cfg.frequency_hz,
                vector_lanes=cfg.vector_lanes,
                tech_node_nm=45,
            )
        ).total_mm2()
        return scale_power(area_45 * _LEAKAGE_W_PER_MM2, cfg.tech_node_nm)

    def execution_energy(
        self,
        macs: int,
        vector_element_ops: int,
        dram_bytes: int,
        sram_bytes: int,
        latency_s: float,
    ) -> EnergyBreakdown:
        """Energy for one program execution at the configured node."""
        cfg = self._config
        node = cfg.tech_node_nm
        mac_j = scale_power(macs * _MAC_ENERGY_PJ * 1e-12, node)
        vec_j = scale_power(vector_element_ops * _VECTOR_ENERGY_PJ * 1e-12, node)
        sram_j = scale_power(sram_bytes * self.sram_pj_per_byte() * 1e-12, node)
        # DRAM device+interface energy does not scale with the logic node.
        dram_j = dram_bytes * cfg.memory.energy_pj_per_byte * 1e-12
        leak_j = self.leakage_watts() * latency_s
        return EnergyBreakdown(
            mac_j=mac_j, vector_j=vec_j, sram_j=sram_j, dram_j=dram_j, leakage_j=leak_j
        )

    def dynamic_power_watts(self, breakdown: EnergyBreakdown, latency_s: float) -> float:
        """Average dynamic power (total minus leakage) over an execution."""
        if latency_s <= 0:
            return 0.0
        dynamic_j = breakdown.total_j - breakdown.leakage_j
        return dynamic_j / latency_s

    def average_power_watts(self, breakdown: EnergyBreakdown, latency_s: float) -> float:
        """Average total power over an execution."""
        if latency_s <= 0:
            return 0.0
        return breakdown.total_j / latency_s
