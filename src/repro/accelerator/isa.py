"""The DSA instruction set the compiler targets.

The ISA is deliberately coarse-grained (tile granularity), matching the
paper's description of compiler-generated, configuration-specific executable
code: the compiler emits LOAD/GEMM/VOP/STORE tile instructions and the
hardware's DMA engine and sequencer overlap them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import CompilationError


class MemorySpace(enum.Enum):
    """Where a tile transfer sources/sinks."""

    DRAM = "dram"
    INPUT_BUFFER = "input_buffer"
    WEIGHT_BUFFER = "weight_buffer"
    OUTPUT_BUFFER = "output_buffer"


@dataclass(frozen=True)
class Instruction:
    """Base class for DSA instructions."""

    op_name: str  # which model op this instruction belongs to (for reports)


@dataclass(frozen=True)
class LoadTile(Instruction):
    """DMA a tile from DRAM into an on-chip buffer."""

    num_bytes: int = 0
    destination: MemorySpace = MemorySpace.INPUT_BUFFER

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise CompilationError(f"LoadTile with negative bytes: {self.num_bytes}")
        if self.destination is MemorySpace.DRAM:
            raise CompilationError("LoadTile destination cannot be DRAM")


@dataclass(frozen=True)
class StoreTile(Instruction):
    """DMA a tile from the output buffer back to DRAM."""

    num_bytes: int = 0

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise CompilationError(f"StoreTile with negative bytes: {self.num_bytes}")


@dataclass(frozen=True)
class GemmTile(Instruction):
    """Execute one weight-stationary systolic pass.

    ``m/n/k`` are the tile's logical dims (already clipped to the layer);
    the array is physically ``pe_rows x pe_cols`` so fill/drain cost is paid
    on the physical geometry.
    """

    m: int = 1
    n: int = 1
    k: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise CompilationError(
                f"GemmTile with non-positive dims m={self.m} n={self.n} k={self.k}"
            )

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


@dataclass(frozen=True)
class VectorOp(Instruction):
    """Execute a SIMD pass over ``elements`` with per-element ``cost``."""

    elements: int = 0
    cost_per_element: int = 1
    fused: bool = False  # True when input comes from the shared output buffer

    def __post_init__(self) -> None:
        if self.elements < 0:
            raise CompilationError(f"VectorOp with negative elements: {self.elements}")
        if self.cost_per_element <= 0:
            raise CompilationError(
                f"VectorOp with non-positive cost: {self.cost_per_element}"
            )


@dataclass(frozen=True)
class Sync(Instruction):
    """Barrier: all outstanding DMA and compute must retire."""


@dataclass(frozen=True)
class Halt(Instruction):
    """End of program."""


@dataclass
class Program:
    """An ordered DSA instruction stream with provenance metadata."""

    model_name: str
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions: List[Instruction]) -> None:
        self.instructions.extend(instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def validate(self) -> None:
        """Check structural invariants: non-empty, single trailing Halt."""
        if not self.instructions:
            raise CompilationError(f"program {self.model_name!r} is empty")
        halts = [i for i, ins in enumerate(self.instructions) if isinstance(ins, Halt)]
        if len(halts) != 1 or halts[0] != len(self.instructions) - 1:
            raise CompilationError(
                f"program {self.model_name!r} must end with exactly one Halt"
            )

    def totals(self) -> Tuple[int, int, int]:
        """Return ``(total MACs, total vector element-ops, total DMA bytes)``."""
        macs = 0
        vec = 0
        dma = 0
        for instruction in self.instructions:
            if isinstance(instruction, GemmTile):
                macs += instruction.macs
            elif isinstance(instruction, VectorOp):
                vec += instruction.elements * instruction.cost_per_element
            elif isinstance(instruction, LoadTile):
                dma += instruction.num_bytes
            elif isinstance(instruction, StoreTile):
                dma += instruction.num_bytes
        return macs, vec, dma
