"""DSA design-point configuration.

A design point fixes the systolic-array geometry, on-chip buffer capacity,
external memory technology, clock, and technology node.  The paper's search
space (§4.2) sweeps PE dims 4–1024 (powers of two), buffers up to 32 MB, and
three memory technologies; its chosen point is a 128x128 array with a 4 MB
scratchpad on DDR5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import GB_DEC, GHZ, MB

# PCIe add-in cards (and therefore computational storage drives) are capped
# at a 25 W power budget (paper §4.2, [68]); the Samsung SmartSSD's TDP.
SMARTSSD_POWER_BUDGET_WATTS = 25.0

# Share of the drive budget available to the accelerator once the flash
# array, controller, and DRAM take their cut (paper: budget "is apportioned
# between the flash and the accelerator").
ACCELERATOR_POWER_SHARE = 0.5


@dataclass(frozen=True)
class MemorySpec:
    """External memory technology attached to the DSA."""

    name: str
    bandwidth_bytes_per_s: float
    energy_pj_per_byte: float
    interface_power_watts: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(f"{self.name}: non-positive bandwidth")
        if self.energy_pj_per_byte < 0 or self.interface_power_watts < 0:
            raise ConfigurationError(f"{self.name}: negative energy/power")

    def bytes_per_cycle(self, frequency_hz: float) -> float:
        """Sustained DMA bytes per accelerator clock cycle."""
        return self.bandwidth_bytes_per_s / frequency_hz


# The paper's three candidate memory technologies (§4.2).  Interface power
# is the always-on PHY/controller cost — decisive inside a 25 W drive:
# HBM2's multi-watt PHY (plus stacked-die cost) is why the paper's optimum
# lands on DDR5 despite HBM2's bandwidth.
DDR4 = MemorySpec("DDR4", 19.2 * GB_DEC, 22.0, 0.9)
DDR5 = MemorySpec("DDR5", 38.0 * GB_DEC, 18.0, 1.1)
HBM2 = MemorySpec("HBM2", 460.0 * GB_DEC, 7.0, 12.0)

MEMORY_TECHNOLOGIES = {"DDR4": DDR4, "DDR5": DDR5, "HBM2": HBM2}


@dataclass(frozen=True)
class DSAConfig:
    """One point in the accelerator design space."""

    pe_rows: int = 128
    pe_cols: int = 128
    buffer_bytes: int = 4 * MB
    memory: MemorySpec = field(default=DDR5)
    frequency_hz: float = 1.0 * GHZ
    vector_lanes: int = 0  # 0 -> defaults to pe_cols
    tech_node_nm: int = 45

    def __post_init__(self) -> None:
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ConfigurationError(
                f"PE grid must be positive, got {self.pe_rows}x{self.pe_cols}"
            )
        if self.buffer_bytes <= 0:
            raise ConfigurationError(f"non-positive buffer: {self.buffer_bytes}")
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"non-positive frequency: {self.frequency_hz}")
        if self.vector_lanes < 0:
            raise ConfigurationError(f"negative vector lanes: {self.vector_lanes}")
        if self.tech_node_nm not in (45, 32, 22, 14, 7):
            raise ConfigurationError(
                f"unsupported tech node {self.tech_node_nm} nm"
            )

    @property
    def num_pes(self) -> int:
        """Total processing elements in the MPU."""
        return self.pe_rows * self.pe_cols

    @property
    def lanes(self) -> int:
        """SIMD width of the VPU."""
        return self.vector_lanes or self.pe_cols

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.num_pes

    @property
    def peak_tops(self) -> float:
        """Peak int8 throughput in tera-ops (2 ops per MAC)."""
        return 2 * self.num_pes * self.frequency_hz / 1e12

    # The scratchpad is split across input/weight/output banks.  The ratios
    # follow the TPU-style apportioning the paper's architecture implies:
    # weights dominate (double-buffered weight tiles), outputs hold 32-bit
    # partial sums.
    @property
    def input_buffer_bytes(self) -> int:
        return int(self.buffer_bytes * 0.25)

    @property
    def weight_buffer_bytes(self) -> int:
        return int(self.buffer_bytes * 0.50)

    @property
    def output_buffer_bytes(self) -> int:
        return int(self.buffer_bytes * 0.25)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at this clock."""
        if cycles < 0:
            raise ConfigurationError(f"negative cycle count: {cycles}")
        return cycles / self.frequency_hz

    @property
    def label(self) -> str:
        """Short human-readable identifier, e.g. ``Dim128-4MB-DDR5``."""
        if self.buffer_bytes >= MB:
            buffer_label = f"{self.buffer_bytes / MB:g}MB"
        else:
            buffer_label = f"{self.buffer_bytes / 1024:g}KB"
        return (
            f"Dim{self.pe_rows}"
            + ("" if self.pe_rows == self.pe_cols else f"x{self.pe_cols}")
            + f"-{buffer_label}-{self.memory.name}"
        )


def paper_design_point() -> DSAConfig:
    """The Pareto-optimal configuration the paper selects (§4.2)."""
    return DSAConfig(
        pe_rows=128,
        pe_cols=128,
        buffer_bytes=4 * MB,
        memory=DDR5,
        frequency_hz=1.0 * GHZ,
        tech_node_nm=45,
    )
