"""The in-storage Domain-Specific Accelerator (DSA) — paper §4.

The DSA couples a systolic Matrix Processing Unit (MPU) with a SIMD Vector
Processing Unit (VPU) behind shared multi-bank buffers and a DMA engine.
This package provides:

- :class:`~repro.accelerator.config.DSAConfig` / memory specs — the design
  point (PE grid, buffer capacity, memory technology, clock, tech node).
- :mod:`~repro.accelerator.isa` — the instruction set the compiler targets.
- :mod:`~repro.accelerator.mpu` / :mod:`~repro.accelerator.vpu` — per-tile
  timing models for the two engines.
- :class:`~repro.accelerator.simulator.CycleSimulator` — executes compiled
  programs, reporting cycles, latency, and energy with double-buffered
  DMA/compute overlap.
- :mod:`~repro.accelerator.power` / :mod:`~repro.accelerator.area` —
  synthesis-style analytical models at 45 nm.
- :mod:`~repro.accelerator.scaling` — DeepScaleTool-style projection to
  newer technology nodes (the paper scales 45 nm -> 14 nm).
"""

from repro.accelerator.area import AreaModel
from repro.accelerator.disassembler import disassemble, hottest_ops, per_op_stats
from repro.accelerator.config import (
    DDR4,
    DDR5,
    HBM2,
    DSAConfig,
    MemorySpec,
    SMARTSSD_POWER_BUDGET_WATTS,
)
from repro.accelerator.isa import (
    GemmTile,
    Halt,
    Instruction,
    LoadTile,
    Program,
    StoreTile,
    Sync,
    VectorOp,
)
from repro.accelerator.packed import PackedProgram, pack_program
from repro.accelerator.power import PowerModel
from repro.accelerator.scaling import TechNode, scale_area, scale_power
from repro.accelerator.simulator import CycleSimulator, ExecutionReport

__all__ = [
    "AreaModel",
    "CycleSimulator",
    "DDR4",
    "DDR5",
    "DSAConfig",
    "ExecutionReport",
    "GemmTile",
    "HBM2",
    "Halt",
    "Instruction",
    "LoadTile",
    "MemorySpec",
    "PackedProgram",
    "PowerModel",
    "Program",
    "SMARTSSD_POWER_BUDGET_WATTS",
    "StoreTile",
    "Sync",
    "TechNode",
    "VectorOp",
    "disassemble",
    "hottest_ops",
    "pack_program",
    "per_op_stats",
    "scale_area",
    "scale_power",
]
