"""Cycle-level simulator for compiled DSA programs.

Two resources advance in parallel, exactly as in the paper's design:

- the **DMA engine**, which streams tiles between DRAM and the on-chip
  buffers, and
- the **compute pipeline** (MPU systolic passes and VPU SIMD passes).

The compiler emits tile loads ahead of the compute that consumes them; the
simulator lets the DMA run ahead (double buffering) so steady-state time is
``max(sum(dma), sum(compute))`` with the first tile's load exposed.  A
:class:`~repro.accelerator.isa.Sync` forces both streams to drain — the
compiler emits one wherever double buffering is infeasible (tile working
set too large for the scratchpad), which is precisely how oversized arrays
lose throughput in the paper's DSE (§4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Union

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import (
    GemmTile,
    Halt,
    LoadTile,
    Program,
    StoreTile,
    Sync,
    VectorOp,
)
from repro.accelerator.packed import (
    PackedProgram,
    instruction_cycles,
    interleave_cycles,
    pack_program,
    per_op_cycles,
)
from repro.accelerator.mpu import MatrixProcessingUnit
from repro.accelerator.power import EnergyBreakdown, PowerModel
from repro.accelerator.vpu import VectorProcessingUnit
from repro.errors import SimulationError


@dataclass(frozen=True)
class ExecutionReport:
    """Result of simulating one program on one design point."""

    model_name: str
    config_label: str
    cycles: int
    latency_s: float
    compute_cycles: int
    dma_cycles: int
    total_macs: int
    total_vector_ops: int
    dram_bytes: int
    energy: EnergyBreakdown
    per_op_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    # The design point's peak MAC throughput, required so utilisation can
    # never silently default to a wrong denominator.
    _peak_macs_per_cycle: int = field(kw_only=True)

    @property
    def mpu_utilization(self) -> float:
        """Achieved MACs over peak MACs for the whole execution."""
        if self.cycles == 0:
            return 0.0
        return self.total_macs / (self.cycles * self._peak_macs_per_cycle)


class CycleSimulator:
    """Executes :class:`Program` streams against a :class:`DSAConfig`.

    Two engines produce bit-identical :class:`ExecutionReport`\\ s:

    - :meth:`run` — the scalar reference interpreter (one Python
      instruction at a time), kept as the correctness oracle;
    - :meth:`run_packed` — the vectorized engine over a
      :class:`~repro.accelerator.packed.PackedProgram`, used by the DSE
      sweeps and the serverless platforms for speed.
    """

    def __init__(self, config: DSAConfig) -> None:
        self._config = config
        self._mpu = MatrixProcessingUnit(config)
        self._vpu = VectorProcessingUnit(config)
        self._power = PowerModel(config)

    @property
    def config(self) -> DSAConfig:
        return self._config

    def _dma_cycles(self, num_bytes: int) -> int:
        bytes_per_cycle = self._config.memory.bytes_per_cycle(
            self._config.frequency_hz
        )
        if bytes_per_cycle <= 0:
            raise SimulationError("memory bandwidth yields zero bytes/cycle")
        return math.ceil(num_bytes / bytes_per_cycle)

    def run(self, program: Program) -> ExecutionReport:
        """Simulate ``program`` and return its execution report."""
        program.validate()

        dma_done = 0  # cycle at which the DMA engine is free
        compute_done = 0  # cycle at which the compute pipeline is free
        compute_busy = 0  # total cycles compute actually worked
        dma_busy = 0
        total_macs = 0
        total_vector_ops = 0
        dram_bytes = 0
        sram_bytes = 0
        per_op: Dict[str, int] = {}

        def charge(op_name: str, cycles: int) -> None:
            per_op[op_name] = per_op.get(op_name, 0) + cycles

        for instruction in program:
            if isinstance(instruction, LoadTile):
                cycles = self._dma_cycles(instruction.num_bytes)
                dma_done += cycles
                dma_busy += cycles
                dram_bytes += instruction.num_bytes
                sram_bytes += instruction.num_bytes
                charge(instruction.op_name, 0)
            elif isinstance(instruction, StoreTile):
                cycles = self._dma_cycles(instruction.num_bytes)
                # A store cannot begin until the data has been produced.
                dma_done = max(dma_done, compute_done) + cycles
                dma_busy += cycles
                dram_bytes += instruction.num_bytes
                sram_bytes += instruction.num_bytes
                charge(instruction.op_name, 0)
            elif isinstance(instruction, GemmTile):
                cycles = self._mpu.tile_cycles(instruction)
                # Compute waits for its operands, which were queued on the
                # DMA engine before this instruction.
                start = max(compute_done, dma_done)
                compute_done = start + cycles
                compute_busy += cycles
                total_macs += instruction.macs
                # Operand/result scratchpad traffic for the systolic pass.
                sram_bytes += (
                    instruction.m * instruction.k
                    + instruction.k * instruction.n
                    + instruction.m * instruction.n * 4
                )
                charge(instruction.op_name, cycles)
            elif isinstance(instruction, VectorOp):
                cycles = self._vpu.op_cycles(instruction)
                if instruction.fused:
                    # Reads the MPU's results from the shared output buffer.
                    start = compute_done
                else:
                    start = max(compute_done, dma_done)
                compute_done = start + cycles
                compute_busy += cycles
                element_ops = instruction.elements * instruction.cost_per_element
                total_vector_ops += element_ops
                sram_bytes += instruction.elements * 2
                charge(instruction.op_name, cycles)
            elif isinstance(instruction, Sync):
                barrier = max(dma_done, compute_done)
                dma_done = barrier
                compute_done = barrier
            elif isinstance(instruction, Halt):
                break
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown instruction {instruction!r}")

        return self._build_report(
            model_name=program.model_name,
            total_cycles=max(dma_done, compute_done),
            compute_busy=compute_busy,
            dma_busy=dma_busy,
            total_macs=total_macs,
            total_vector_ops=total_vector_ops,
            dram_bytes=dram_bytes,
            sram_bytes=sram_bytes,
            per_op=per_op,
        )

    def run_packed(
        self, program: Union[Program, PackedProgram]
    ) -> ExecutionReport:
        """Vectorized execution: bit-identical to :meth:`run`, no per-
        instruction Python loop.

        Accepts either a :class:`Program` (packed on the fly) or an
        already-packed :class:`PackedProgram` — the latter is what the
        cross-sweep program cache hands out, so configs that share tiling
        skip both compilation and packing.
        """
        packed = (
            program
            if isinstance(program, PackedProgram)
            else pack_program(program)
        )
        dma_cycles, compute_cycles = instruction_cycles(packed, self._config)
        dma_done, compute_done = interleave_cycles(
            packed, dma_cycles, compute_cycles
        )
        return self._build_report(
            model_name=packed.model_name,
            total_cycles=max(dma_done, compute_done),
            compute_busy=int(compute_cycles.sum()),
            dma_busy=int(dma_cycles.sum()),
            total_macs=packed.total_macs,
            total_vector_ops=packed.total_element_ops,
            dram_bytes=packed.dram_bytes,
            sram_bytes=packed.total_sram_bytes,
            per_op=per_op_cycles(packed, compute_cycles),
        )

    def _build_report(
        self,
        model_name: str,
        total_cycles: int,
        compute_busy: int,
        dma_busy: int,
        total_macs: int,
        total_vector_ops: int,
        dram_bytes: int,
        sram_bytes: int,
        per_op: Dict[str, int],
    ) -> ExecutionReport:
        latency_s = self._config.cycles_to_seconds(total_cycles)
        energy = self._power.execution_energy(
            macs=total_macs,
            vector_element_ops=total_vector_ops,
            dram_bytes=dram_bytes,
            sram_bytes=sram_bytes,
            latency_s=latency_s,
        )
        return ExecutionReport(
            model_name=model_name,
            config_label=self._config.label,
            cycles=total_cycles,
            latency_s=latency_s,
            compute_cycles=compute_busy,
            dma_cycles=dma_busy,
            total_macs=total_macs,
            total_vector_ops=total_vector_ops,
            dram_bytes=dram_bytes,
            energy=energy,
            per_op_cycles=per_op,
            _peak_macs_per_cycle=self._config.peak_macs_per_cycle,
        )
