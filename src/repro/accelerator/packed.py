"""Columnar (packed) program representation and vectorized timing kernels.

The scalar :meth:`~repro.accelerator.simulator.CycleSimulator.run` walks one
Python instruction object at a time; for design-space sweeps that interpreter
loop dominates wall-clock.  This module lowers a
:class:`~repro.accelerator.isa.Program` into numpy columns once — opcode,
DMA bytes, tile dims, element counts, fused flags — and evaluates the
DMA/compute interleave for any design point with vectorized kernels.

The interleave recurrence tracked by the scalar simulator is a pair of
clocks ``(dma_done, compute_done)`` updated per instruction with ``+`` and
``max``.  Every instruction is therefore a linear operator in the
(max, +) semiring acting on that clock pair:

====================  =======================================
LoadTile              ``D' = D + d``
StoreTile             ``D' = max(D, C) + d``
GemmTile / VectorOp   ``C' = max(C, D) + c`` (unfused)
VectorOp (fused)      ``C' = C + c``
Sync                  ``D' = C' = max(D, C)``
====================  =======================================

Max-plus matrix products are associative, so the final clock pair is the
ordered product of per-instruction 2x2 matrices — computed here with a
vectorized pairwise tree reduction (O(n) work, O(log n) numpy passes, no
per-instruction Python).  Costs are integers well below 2**53, so float64
max/add arithmetic is exact and the result is bit-identical to the scalar
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import (
    GemmTile,
    Halt,
    LoadTile,
    Program,
    StoreTile,
    Sync,
    VectorOp,
)
from repro.accelerator.vpu import PASS_OVERHEAD_CYCLES
from repro.errors import SimulationError

# Opcodes of the packed stream.  Halt is not represented: packing truncates
# at the first Halt, exactly where the scalar interpreter stops.
OP_LOAD = 0
OP_STORE = 1
OP_GEMM = 2
OP_VOP = 3
OP_SYNC = 4

_NEG = -np.inf


@dataclass(frozen=True)
class PackedProgram:
    """A :class:`Program` lowered to design-point-independent numpy columns.

    Columns hold one row per instruction (Halt excluded).  Everything that
    depends on the design point — DMA cycles, systolic pass cycles, SIMD
    pass cycles — is derived per config by :func:`instruction_cycles`, so a
    single packing is reusable across every config that shares the tiling
    (the cross-sweep program cache exploits exactly that).
    """

    model_name: str
    opcodes: np.ndarray  # uint8, one of OP_*
    op_ids: np.ndarray  # int32 index into op_names (-1 for Sync)
    num_bytes: np.ndarray  # int64 DMA payload (loads/stores)
    gemm_m: np.ndarray  # int64 logical tile dims (gemms)
    gemm_n: np.ndarray
    gemm_k: np.ndarray
    macs: np.ndarray  # int64 m*n*k (gemms)
    element_ops: np.ndarray  # int64 elements*cost (vector ops)
    fused: np.ndarray  # bool (vector ops)
    sram_bytes: np.ndarray  # int64 scratchpad traffic per instruction
    op_names: Tuple[str, ...]  # first-charge order, mirrors scalar dict order

    def __len__(self) -> int:
        return int(self.opcodes.shape[0])

    @property
    def num_sync_segments(self) -> int:
        """Number of barrier-delimited segments in the stream."""
        return int(np.count_nonzero(self.opcodes == OP_SYNC)) + 1

    @property
    def dram_bytes(self) -> int:
        """Total DMA traffic (loads + stores)."""
        return int(self.num_bytes.sum())

    @property
    def total_macs(self) -> int:
        return int(self.macs.sum())

    @property
    def total_element_ops(self) -> int:
        return int(self.element_ops.sum())

    @property
    def total_sram_bytes(self) -> int:
        return int(self.sram_bytes.sum())


def pack_program(program: Program) -> PackedProgram:
    """Lower ``program`` into columnar form (validating it first)."""
    program.validate()

    opcodes: List[int] = []
    op_ids: List[int] = []
    num_bytes: List[int] = []
    gemm_m: List[int] = []
    gemm_n: List[int] = []
    gemm_k: List[int] = []
    macs: List[int] = []
    element_ops: List[int] = []
    fused: List[bool] = []
    sram: List[int] = []
    name_index: Dict[str, int] = {}

    def op_id(name: str) -> int:
        index = name_index.get(name)
        if index is None:
            index = len(name_index)
            name_index[name] = index
        return index

    for instruction in program:
        if isinstance(instruction, LoadTile):
            opcodes.append(OP_LOAD)
            op_ids.append(op_id(instruction.op_name))
            num_bytes.append(instruction.num_bytes)
            gemm_m.append(0)
            gemm_n.append(0)
            gemm_k.append(0)
            macs.append(0)
            element_ops.append(0)
            fused.append(False)
            sram.append(instruction.num_bytes)
        elif isinstance(instruction, StoreTile):
            opcodes.append(OP_STORE)
            op_ids.append(op_id(instruction.op_name))
            num_bytes.append(instruction.num_bytes)
            gemm_m.append(0)
            gemm_n.append(0)
            gemm_k.append(0)
            macs.append(0)
            element_ops.append(0)
            fused.append(False)
            sram.append(instruction.num_bytes)
        elif isinstance(instruction, GemmTile):
            opcodes.append(OP_GEMM)
            op_ids.append(op_id(instruction.op_name))
            num_bytes.append(0)
            gemm_m.append(instruction.m)
            gemm_n.append(instruction.n)
            gemm_k.append(instruction.k)
            macs.append(instruction.macs)
            element_ops.append(0)
            fused.append(False)
            sram.append(
                instruction.m * instruction.k
                + instruction.k * instruction.n
                + instruction.m * instruction.n * 4
            )
        elif isinstance(instruction, VectorOp):
            opcodes.append(OP_VOP)
            op_ids.append(op_id(instruction.op_name))
            num_bytes.append(0)
            gemm_m.append(0)
            gemm_n.append(0)
            gemm_k.append(0)
            macs.append(0)
            element_ops.append(instruction.elements * instruction.cost_per_element)
            fused.append(instruction.fused)
            sram.append(instruction.elements * 2)
        elif isinstance(instruction, Sync):
            opcodes.append(OP_SYNC)
            op_ids.append(-1)
            num_bytes.append(0)
            gemm_m.append(0)
            gemm_n.append(0)
            gemm_k.append(0)
            macs.append(0)
            element_ops.append(0)
            fused.append(False)
            sram.append(0)
        elif isinstance(instruction, Halt):
            break
        else:  # pragma: no cover - defensive, mirrors the scalar path
            raise SimulationError(f"unknown instruction {instruction!r}")

    return PackedProgram(
        model_name=program.model_name,
        opcodes=np.asarray(opcodes, dtype=np.uint8),
        op_ids=np.asarray(op_ids, dtype=np.int32),
        num_bytes=np.asarray(num_bytes, dtype=np.int64),
        gemm_m=np.asarray(gemm_m, dtype=np.int64),
        gemm_n=np.asarray(gemm_n, dtype=np.int64),
        gemm_k=np.asarray(gemm_k, dtype=np.int64),
        macs=np.asarray(macs, dtype=np.int64),
        element_ops=np.asarray(element_ops, dtype=np.int64),
        fused=np.asarray(fused, dtype=bool),
        sram_bytes=np.asarray(sram, dtype=np.int64),
        op_names=tuple(name_index),
    )


def instruction_cycles(
    packed: PackedProgram, config: DSAConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-instruction ``(dma_cycles, compute_cycles)`` for ``config``.

    Replicates the scalar models exactly: ``ceil(bytes / bytes_per_cycle)``
    for DMA (same float64 division/ceil as ``math.ceil`` on floats),
    ``k + m + pe_rows + pe_cols`` for a systolic pass, and
    ``overhead + ceil(element_ops / lanes)`` for a SIMD pass.
    """
    bytes_per_cycle = config.memory.bytes_per_cycle(config.frequency_hz)
    if bytes_per_cycle <= 0:
        raise SimulationError("memory bandwidth yields zero bytes/cycle")

    is_dma = (packed.opcodes == OP_LOAD) | (packed.opcodes == OP_STORE)
    is_gemm = packed.opcodes == OP_GEMM
    is_vop = packed.opcodes == OP_VOP

    bad = is_gemm & (
        (packed.gemm_k > config.pe_rows) | (packed.gemm_n > config.pe_cols)
    )
    if bad.any():
        first = int(np.argmax(bad))
        raise SimulationError(
            f"tile k={int(packed.gemm_k[first])} n={int(packed.gemm_n[first])} "
            f"exceeds array {config.pe_rows}x{config.pe_cols}"
        )

    dma = np.zeros(len(packed), dtype=np.int64)
    dma[is_dma] = np.ceil(
        packed.num_bytes[is_dma].astype(np.float64) / bytes_per_cycle
    ).astype(np.int64)

    compute = np.zeros(len(packed), dtype=np.int64)
    drain = config.pe_rows + config.pe_cols
    compute[is_gemm] = packed.gemm_k[is_gemm] + packed.gemm_m[is_gemm] + drain
    compute[is_vop] = PASS_OVERHEAD_CYCLES + np.ceil(
        packed.element_ops[is_vop].astype(np.float64) / config.lanes
    ).astype(np.int64)
    return dma, compute


def _maxplus_product(
    a: Tuple[np.ndarray, ...], b: Tuple[np.ndarray, ...]
) -> Tuple[np.ndarray, ...]:
    """Elementwise max-plus product ``a @ b`` of stacked 2x2 matrices."""
    a00, a01, a10, a11 = a
    b00, b01, b10, b11 = b
    return (
        np.maximum(a00 + b00, a01 + b10),
        np.maximum(a00 + b01, a01 + b11),
        np.maximum(a10 + b00, a11 + b10),
        np.maximum(a10 + b01, a11 + b11),
    )


def interleave_cycles(
    packed: PackedProgram, dma_cycles: np.ndarray, compute_cycles: np.ndarray
) -> Tuple[int, int]:
    """Final ``(dma_done, compute_done)`` clocks of the interleaved stream.

    Builds one max-plus matrix per instruction and reduces them with a
    pairwise tree (padding odd levels with the max-plus identity), which
    keeps the arithmetic identical to folding the scalar recurrence.
    """
    n = len(packed)
    if n == 0:
        return 0, 0

    d = dma_cycles.astype(np.float64)
    c = compute_cycles.astype(np.float64)
    is_load = packed.opcodes == OP_LOAD
    is_store = packed.opcodes == OP_STORE
    is_sync = packed.opcodes == OP_SYNC
    is_compute = (packed.opcodes == OP_GEMM) | (packed.opcodes == OP_VOP)
    is_coupled = is_compute & ~packed.fused

    # Matrix entries: new_state[i] = max_j(m[i][j] + old_state[j]) with
    # state = (D, C).  Fused vector ops never read the DMA clock, so their
    # m10 stays -inf; loads/stores leave the compute clock untouched.
    m00 = np.where(is_load | is_store, d, 0.0)
    m01 = np.where(is_store, d, np.where(is_sync, 0.0, _NEG))
    m10 = np.where(is_coupled, c, np.where(is_sync, 0.0, _NEG))
    m11 = np.where(is_compute, c, 0.0)

    mats = (m00, m01, m10, m11)
    while mats[0].shape[0] > 1:
        count = mats[0].shape[0]
        if count % 2:
            identity = (
                np.array([0.0]),
                np.array([_NEG]),
                np.array([_NEG]),
                np.array([0.0]),
            )
            mats = tuple(
                np.concatenate([m, i]) for m, i in zip(mats, identity)
            )
        later = tuple(m[1::2] for m in mats)
        earlier = tuple(m[0::2] for m in mats)
        mats = _maxplus_product(later, earlier)

    m00, m01, m10, m11 = (float(m[0]) for m in mats)
    # Initial state is (0, 0), so the final clocks are the row maxima.
    dma_done = max(m00, m01)
    compute_done = max(m10, m11)
    return int(dma_done), int(compute_done)


def per_op_cycles(
    packed: PackedProgram, compute_cycles: np.ndarray
) -> Dict[str, int]:
    """Per-op charged cycles, in first-charge order like the scalar dict.

    Loads and stores charge zero cycles (they still surface their op in the
    breakdown); gemm and vector instructions charge their compute cost.
    """
    if not packed.op_names:
        return {}
    charged = packed.op_ids >= 0
    is_compute = (packed.opcodes == OP_GEMM) | (packed.opcodes == OP_VOP)
    weights = np.where(is_compute, compute_cycles, 0)[charged]
    totals = np.bincount(
        packed.op_ids[charged],
        weights=weights.astype(np.float64),
        minlength=len(packed.op_names),
    )
    return {name: int(totals[i]) for i, name in enumerate(packed.op_names)}
