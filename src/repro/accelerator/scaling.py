"""Technology-node scaling (paper §4.2).

The paper synthesises at 45 nm (FreePDK) and follows the DeepScaleTool
methodology [103] to project power and area to 14 nm — "relatively similar
to the technology node of Samsung SmartSSD".  The factors below follow the
published dense-logic scaling trajectory: area shrinks roughly with the
square of feature size (with layout overheads), and power shrinks more
slowly because supply-voltage scaling stalled after Dennard scaling ended.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError


class TechNode(enum.Enum):
    """Supported technology nodes with (area, power) factors vs 45 nm."""

    NM45 = (45, 1.0, 1.0)
    NM32 = (32, 0.55, 0.65)
    NM22 = (22, 0.28, 0.45)
    NM14 = (14, 0.105, 0.30)
    NM7 = (7, 0.036, 0.16)

    def __init__(self, nm: int, area_factor: float, power_factor: float) -> None:
        self.nm = nm
        self.area_factor = area_factor
        self.power_factor = power_factor

    @classmethod
    def from_nm(cls, nm: int) -> "TechNode":
        for node in cls:
            if node.nm == nm:
                return node
        raise ConfigurationError(f"unsupported tech node: {nm} nm")


def scale_area(area_mm2_at_45nm: float, target_nm: int) -> float:
    """Project a 45 nm area to ``target_nm``."""
    if area_mm2_at_45nm < 0:
        raise ConfigurationError(f"negative area: {area_mm2_at_45nm}")
    return area_mm2_at_45nm * TechNode.from_nm(target_nm).area_factor


def scale_power(power_watts_at_45nm: float, target_nm: int) -> float:
    """Project a 45 nm power figure to ``target_nm`` at iso-frequency."""
    if power_watts_at_45nm < 0:
        raise ConfigurationError(f"negative power: {power_watts_at_45nm}")
    return power_watts_at_45nm * TechNode.from_nm(target_nm).power_factor


def scale_energy(energy_joules_at_45nm: float, target_nm: int) -> float:
    """Project a 45 nm energy figure to ``target_nm`` (same factor as power
    at iso-frequency, since runtime is unchanged)."""
    if energy_joules_at_45nm < 0:
        raise ConfigurationError(f"negative energy: {energy_joules_at_45nm}")
    return energy_joules_at_45nm * TechNode.from_nm(target_nm).power_factor
