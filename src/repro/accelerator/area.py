"""Analytical area model for a DSA design point (45 nm baseline).

Constants are calibrated to place the paper's named design points on the
area–performance frontier of Fig. 8: the chosen Dim128-4MB point lands in
the low-hundreds of mm^2 while Dim1024-32MB reaches several thousand mm^2
at 45 nm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import DSAConfig
from repro.accelerator.scaling import scale_area
from repro.units import MB

# Per-PE area (int8 MAC + pipeline registers + control) at 45 nm.
_PE_AREA_MM2 = 0.006
# SRAM macro density at 45 nm.
_SRAM_MM2_PER_MB = 2.8
# Vector engine area per lane (ALU + MAC + special-function unit).
_LANE_AREA_MM2 = 0.012
# NoC, DMA engine, sequencer, PHY — fractional overhead on core area.
_OVERHEAD_FACTOR = 1.25


@dataclass(frozen=True)
class AreaBreakdown:
    """Component-level area in mm^2 at the configured node."""

    mpu_mm2: float
    vpu_mm2: float
    sram_mm2: float
    overhead_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.mpu_mm2 + self.vpu_mm2 + self.sram_mm2 + self.overhead_mm2


class AreaModel:
    """Area estimator for :class:`DSAConfig` design points."""

    def __init__(self, config: DSAConfig) -> None:
        self._config = config

    def breakdown(self) -> AreaBreakdown:
        """Per-component area at the config's technology node."""
        cfg = self._config
        mpu = cfg.num_pes * _PE_AREA_MM2
        vpu = cfg.lanes * _LANE_AREA_MM2
        sram = (cfg.buffer_bytes / MB) * _SRAM_MM2_PER_MB
        core = mpu + vpu + sram
        overhead = core * (_OVERHEAD_FACTOR - 1.0)
        node = cfg.tech_node_nm
        return AreaBreakdown(
            mpu_mm2=scale_area(mpu, node),
            vpu_mm2=scale_area(vpu, node),
            sram_mm2=scale_area(sram, node),
            overhead_mm2=scale_area(overhead, node),
        )

    def total_mm2(self) -> float:
        """Total die area at the config's technology node."""
        return self.breakdown().total_mm2
