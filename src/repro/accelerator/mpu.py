"""Matrix Processing Unit timing model.

Weight-stationary systolic array (paper §4.1, TPU-style): a weight tile is
loaded row-by-row into the PE grid, activations stream through rows, and
partial sums cascade down columns in a waterfall.  Per-tile cycle cost:

    load (pe_rows) + stream (m) + drain (pe_cols)

The fill/drain terms are paid on the *physical* geometry — a large array
pays its pipeline depth even when the logical tile is small, which is the
microarchitectural reason batch-1 serverless inference favours the 128x128
point over 1024x1024 in the paper's design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import GemmTile
from repro.errors import SimulationError


@dataclass(frozen=True)
class MPUTiming:
    """Cycle accounting for one systolic pass."""

    load_cycles: int
    stream_cycles: int
    drain_cycles: int

    @property
    def total(self) -> int:
        return self.load_cycles + self.stream_cycles + self.drain_cycles


class MatrixProcessingUnit:
    """Timing model of the systolic MPU for a given design point."""

    def __init__(self, config: DSAConfig) -> None:
        self._config = config

    @property
    def config(self) -> DSAConfig:
        return self._config

    def tile_timing(self, tile: GemmTile) -> MPUTiming:
        """Cycle cost of one weight-stationary pass over ``tile``.

        The logical tile must fit the physical array (the compiler clips
        tiles before emitting them).
        """
        cfg = self._config
        if tile.k > cfg.pe_rows or tile.n > cfg.pe_cols:
            raise SimulationError(
                f"tile k={tile.k} n={tile.n} exceeds array "
                f"{cfg.pe_rows}x{cfg.pe_cols}"
            )
        # Weight rows shift in one per cycle; a partial tile still occupies
        # its rows only.
        load = tile.k
        # One activation row enters per cycle.
        stream = tile.m
        # Partial sums ripple through every physical column stage.
        drain = cfg.pe_rows + cfg.pe_cols
        return MPUTiming(load_cycles=load, stream_cycles=stream, drain_cycles=drain)

    def tile_cycles(self, tile: GemmTile) -> int:
        """Total cycles for one tile."""
        return self.tile_timing(tile).total

    def utilization(self, tile: GemmTile) -> float:
        """Fraction of peak MACs achieved during this tile's execution."""
        cycles = self.tile_cycles(tile)
        peak = cycles * self._config.num_pes
        if peak == 0:
            return 0.0
        return tile.macs / peak
