"""Compiler output verification.

An independent checker for generated programs — the compiler-engineering
equivalent of the paper's simulator-vs-FPGA validation.  It replays a
program against the source graph and the target design point and checks:

- **work conservation**: tile MACs sum exactly to the graph's MACs, and
  vector element-ops cover every vector op in the graph;
- **geometry**: every GEMM tile fits the physical array;
- **traffic sanity**: DMA bytes at least cover the weights plus the graph
  input and output (nothing can appear on chip for free);
- **structure**: loads precede the compute that consumes them within each
  op, and the program terminates with a single Halt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import GemmTile, Halt, LoadTile, Program, VectorOp
from repro.errors import CompilationError
from repro.models.graph import Graph


@dataclass
class VerificationReport:
    """Outcome of verifying one compiled program."""

    model_name: str
    config_label: str
    checks_passed: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def require_ok(self) -> None:
        """Raise if any check failed."""
        if not self.ok:
            raise CompilationError(
                f"program {self.model_name!r} failed verification: "
                + "; ".join(self.problems)
            )


def verify_program(graph: Graph, program: Program, config: DSAConfig) -> VerificationReport:
    """Run all checks; returns a report rather than raising."""
    report = VerificationReport(
        model_name=graph.name, config_label=config.label
    )
    stats = graph.stats()
    macs, vector_ops, dma_bytes = program.totals()

    # Work conservation.
    if macs == stats.total_macs:
        report.checks_passed.append("mac_conservation")
    else:
        report.problems.append(
            f"MACs {macs} != graph MACs {stats.total_macs}"
        )

    graph_vector_ops = sum(
        op.vector_elements() * max(1, round(op.flops() / max(1, op.vector_elements())))
        for op in graph
        if not op.is_matrix_op
    )
    if vector_ops >= graph_vector_ops * 0.99:
        report.checks_passed.append("vector_coverage")
    else:
        report.problems.append(
            f"vector element-ops {vector_ops} < graph's {graph_vector_ops}"
        )

    # Geometry.
    oversized = [
        i
        for i in program
        if isinstance(i, GemmTile) and (i.k > config.pe_rows or i.n > config.pe_cols)
    ]
    if not oversized:
        report.checks_passed.append("tile_geometry")
    else:
        report.problems.append(f"{len(oversized)} tiles exceed the array")

    # Traffic sanity.  Embedding tables are gathered, not streamed whole:
    # only the looked-up rows must cross the DMA engine.
    from repro.models.ops import Embedding

    weight_floor = 0
    for op in graph:
        if isinstance(op, Embedding):
            weight_floor += op.infer_output().size_bytes
        else:
            weight_floor += op.weight_bytes()
    floor = weight_floor + stats.input_bytes + stats.output_bytes
    if dma_bytes >= floor:
        report.checks_passed.append("traffic_floor")
    else:
        report.problems.append(
            f"DMA bytes {dma_bytes} below physical floor {floor}"
        )

    # Structure: each op's first compute must be preceded by a load for
    # that op (vector ops fused to a producer are exempt).
    pending_loads: set = set()
    structural = True
    for instruction in program:
        if isinstance(instruction, LoadTile):
            pending_loads.add(instruction.op_name)
        elif isinstance(instruction, GemmTile):
            if instruction.op_name not in pending_loads:
                structural = False
                report.problems.append(
                    f"GEMM for {instruction.op_name!r} before any load"
                )
                break
        elif isinstance(instruction, VectorOp):
            if not instruction.fused and instruction.op_name not in pending_loads:
                structural = False
                report.problems.append(
                    f"unfused VOP for {instruction.op_name!r} before any load"
                )
                break
    if structural:
        report.checks_passed.append("load_before_compute")

    halts = [i for i in program if isinstance(i, Halt)]
    if len(halts) == 1 and isinstance(program.instructions[-1], Halt):
        report.checks_passed.append("single_trailing_halt")
    else:
        report.problems.append("missing or misplaced Halt")

    return report
