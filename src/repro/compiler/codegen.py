"""Code generation: fusion groups -> DSA instruction stream.

Emission order follows the weight-stationary loop nest (n -> k -> m) with
tile loads interleaved ahead of the systolic passes that consume them, so
the cycle simulator's DMA engine can run ahead (double buffering).  Ops
whose tiles cannot be double-buffered get a Sync before every weight load,
serialising DMA and compute for that op.
"""

from __future__ import annotations

from typing import List

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import (
    GemmTile,
    Halt,
    Instruction,
    LoadTile,
    MemorySpace,
    Program,
    StoreTile,
    Sync,
    VectorOp,
)
from repro.compiler.frontend import FusionGroup, fuse
from repro.compiler.tiling import plan_gemm
from repro.errors import CompilationError
from repro.models.graph import Graph
from repro.models.ops import Conv2D, Embedding, GeMM, Op


def _gemm_dims(op: Op) -> tuple[int, int, int]:
    """Logical (M, N, K) of a matrix op."""
    if isinstance(op, Conv2D):
        return op.as_gemm_dims()
    if isinstance(op, GeMM):
        return op.batch * op.m, op.n, op.k
    raise CompilationError(f"op {op.name!r} is not a matrix op")


def _vector_cost(op: Op) -> int:
    """Per-element cost for a vector op, derived from its FLOP accounting."""
    elements = op.vector_elements()
    if elements == 0:
        return 1
    return max(1, round(op.flops() / elements))


def _emit_matrix_group(
    group: FusionGroup, config: DSAConfig, out: List[Instruction]
) -> None:
    op = group.matrix_op
    assert op is not None
    m, n, k = _gemm_dims(op)
    dtype_bytes = op.input.dtype.num_bytes
    plan = plan_gemm(m, n, k, dtype_bytes, config)

    for n_idx in range(plan.n_tiles):
        tn = min(plan.tile_n, n - n_idx * plan.tile_n)
        for k_idx in range(plan.k_tiles):
            tk = min(plan.tile_k, k - k_idx * plan.tile_k)
            if not plan.double_buffered:
                out.append(Sync(op.name))
            out.append(
                LoadTile(
                    op.name,
                    num_bytes=tk * tn * dtype_bytes,
                    destination=MemorySpace.WEIGHT_BUFFER,
                )
            )
            load_activations = n_idx == 0 or not plan.activations_resident
            for m_idx in range(plan.m_tiles):
                tm = min(plan.tile_m, m - m_idx * plan.tile_m)
                if load_activations:
                    out.append(
                        LoadTile(
                            op.name,
                            num_bytes=tm * tk * dtype_bytes,
                            destination=MemorySpace.INPUT_BUFFER,
                        )
                    )
                out.append(GemmTile(op.name, m=tm, n=tn, k=tk))

    for vec_op in group.vector_ops:
        out.append(
            VectorOp(
                vec_op.name,
                elements=vec_op.vector_elements(),
                cost_per_element=_vector_cost(vec_op),
                fused=True,
            )
        )

    out.append(StoreTile(group.name, num_bytes=group.output.size_bytes))


def _emit_vector_group(group: FusionGroup, out: List[Instruction]) -> None:
    first = group.vector_ops[0]
    out.append(
        LoadTile(
            first.name,
            num_bytes=first.input.size_bytes,
            destination=MemorySpace.INPUT_BUFFER,
        )
    )
    for index, vec_op in enumerate(group.vector_ops):
        if isinstance(vec_op, Embedding):
            # Gathered table rows are streamed from DRAM.
            out.append(
                LoadTile(
                    vec_op.name,
                    num_bytes=vec_op.infer_output().size_bytes,
                    destination=MemorySpace.INPUT_BUFFER,
                )
            )
        out.append(
            VectorOp(
                vec_op.name,
                elements=vec_op.vector_elements(),
                cost_per_element=_vector_cost(vec_op),
                fused=index > 0,
            )
        )
    out.append(StoreTile(group.name, num_bytes=group.output.size_bytes))


def generate(graph: Graph, config: DSAConfig) -> Program:
    """Compile ``graph`` into a DSA program for ``config``."""
    groups = fuse(graph)
    instructions: List[Instruction] = []
    for group in groups:
        if group.is_vector_only:
            _emit_vector_group(group, instructions)
        else:
            _emit_matrix_group(group, config, instructions)
    instructions.append(Halt("end"))
    program = Program(model_name=graph.name, instructions=instructions)
    program.validate()
    return program
