"""Design-point-specific tiling (paper §5.1, §4.2).

The compiler clips weight tiles to the physical array (k <= pe_rows,
n <= pe_cols), pads partial tiles implicitly (fill/drain is paid on the
physical geometry by the MPU model), and sizes the activation tile so a
double-buffered working set fits the scratchpad.  When even a single
minimal tile cannot be double-buffered, the plan marks the op serial: the
code generator then emits a Sync per tile, and memory transfer time is
exposed — the effect that makes oversized arrays unattractive in the DSE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.config import DSAConfig
from repro.errors import CompilationError


@dataclass(frozen=True)
class TilePlan:
    """Loop tiling for one GeMM of logical dims ``m x n x k``."""

    m: int
    n: int
    k: int
    tile_m: int
    tile_n: int
    tile_k: int
    dtype_bytes: int
    double_buffered: bool
    activations_resident: bool  # whole M x K activation fits on chip

    @property
    def m_tiles(self) -> int:
        return math.ceil(self.m / self.tile_m)

    @property
    def n_tiles(self) -> int:
        return math.ceil(self.n / self.tile_n)

    @property
    def k_tiles(self) -> int:
        return math.ceil(self.k / self.tile_k)

    @property
    def num_weight_tiles(self) -> int:
        return self.n_tiles * self.k_tiles

    @property
    def weight_tile_bytes(self) -> int:
        return self.tile_k * self.tile_n * self.dtype_bytes

    @property
    def activation_tile_bytes(self) -> int:
        return self.tile_m * self.tile_k * self.dtype_bytes

    @property
    def output_tile_bytes(self) -> int:
        return self.tile_m * self.tile_n * self.dtype_bytes

    @property
    def activation_load_passes(self) -> int:
        """How many times the full activation is streamed from DRAM."""
        return 1 if self.activations_resident else self.n_tiles

    def total_dram_traffic_bytes(self) -> int:
        """Total DMA bytes for this op (weights + activations + outputs)."""
        weights = self.k * self.n * self.dtype_bytes
        activations = self.m * self.k * self.dtype_bytes * self.activation_load_passes
        outputs = self.m * self.n * self.dtype_bytes
        return weights + activations + outputs


def plan_gemm(m: int, n: int, k: int, dtype_bytes: int, config: DSAConfig) -> TilePlan:
    """Choose tile sizes for an ``m x n x k`` GeMM on ``config``."""
    if min(m, n, k) <= 0:
        raise CompilationError(f"invalid GeMM dims m={m} n={n} k={k}")
    if dtype_bytes <= 0:
        raise CompilationError(f"invalid dtype width {dtype_bytes}")

    tile_k = min(k, config.pe_rows)
    tile_n = min(n, config.pe_cols)

    # Activation tile: half the input buffer (the other half is the double
    # buffer), bounded below by one row.
    half_input = config.input_buffer_bytes // 2
    rows_fitting = max(1, half_input // max(1, tile_k * dtype_bytes))
    tile_m = min(m, rows_fitting)

    # Double buffering requires two in-flight working sets in the scratchpad:
    # weight tile (weight buffer), activation tile (input buffer), and a
    # 32-bit partial-sum tile (output buffer).
    weight_ok = 2 * tile_k * tile_n * dtype_bytes <= config.weight_buffer_bytes
    input_ok = 2 * tile_m * tile_k * dtype_bytes <= config.input_buffer_bytes
    output_ok = 2 * tile_m * tile_n * 4 <= config.output_buffer_bytes
    double_buffered = weight_ok and input_ok and output_ok

    # If the partial-sum tile overflows the output buffer, shrink tile_m.
    if not output_ok:
        rows_for_output = max(1, config.output_buffer_bytes // (2 * tile_n * 4))
        tile_m = min(tile_m, rows_for_output)
        output_ok = 2 * tile_m * tile_n * 4 <= config.output_buffer_bytes
        input_ok = 2 * tile_m * tile_k * dtype_bytes <= config.input_buffer_bytes
        double_buffered = weight_ok and input_ok and output_ok

    activations_resident = m * k * dtype_bytes <= config.input_buffer_bytes

    return TilePlan(
        m=m,
        n=n,
        k=k,
        tile_m=tile_m,
        tile_n=tile_n,
        tile_k=tile_k,
        dtype_bytes=dtype_bytes,
        double_buffered=double_buffered,
        activations_resident=activations_resident,
    )
