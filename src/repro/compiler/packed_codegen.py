"""Direct graph -> packed-column lowering (the sweep-speed compiler path).

:func:`repro.compiler.codegen.generate` materialises one Python object per
instruction; at small array dims a single model compiles to millions of
tile instructions and object construction dominates sweep wall-clock.
This module produces the *same* instruction stream — column for column —
as ``pack_program(generate(graph, config))``, but builds the columns with
numpy broadcasting over the tile grid instead of a Python emission loop.

The equivalence is enforced by tests (`tests/test_packed_equivalence.py`):
for every zoo model and design point the two lowerings yield identical
columns, and the scalar interpreter remains the behavioural oracle.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.config import DSAConfig
from repro.accelerator.packed import (
    OP_GEMM,
    OP_LOAD,
    OP_STORE,
    OP_SYNC,
    OP_VOP,
    PackedProgram,
)
from repro.compiler.codegen import _gemm_dims, _vector_cost
from repro.compiler.frontend import FusionGroup, fuse
from repro.compiler.tiling import plan_gemm
from repro.models.graph import Graph
from repro.models.ops import Embedding

_COLUMNS = (
    "opcodes",
    "op_ids",
    "num_bytes",
    "gemm_m",
    "gemm_n",
    "gemm_k",
    "macs",
    "element_ops",
    "fused",
    "sram_bytes",
)


class _ColumnBuilder:
    """Accumulates per-chunk column arrays and the op-name table."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        self._chunks: Dict[str, List[np.ndarray]] = {c: [] for c in _COLUMNS}
        self._name_index: Dict[str, int] = {}

    def op_id(self, name: str) -> int:
        index = self._name_index.get(name)
        if index is None:
            index = len(self._name_index)
            self._name_index[name] = index
        return index

    def append(self, **columns: np.ndarray) -> None:
        for name in _COLUMNS:
            self._chunks[name].append(columns[name])

    def append_row(
        self,
        opcode: int,
        op_id: int,
        num_bytes: int = 0,
        element_ops: int = 0,
        fused: bool = False,
        sram_bytes: int = 0,
    ) -> None:
        """One scalar (non-gemm) instruction row."""
        zero = np.zeros(1, dtype=np.int64)
        self.append(
            opcodes=np.array([opcode], dtype=np.uint8),
            op_ids=np.array([op_id], dtype=np.int32),
            num_bytes=np.array([num_bytes], dtype=np.int64),
            gemm_m=zero,
            gemm_n=zero,
            gemm_k=zero,
            macs=zero,
            element_ops=np.array([element_ops], dtype=np.int64),
            fused=np.array([fused], dtype=bool),
            sram_bytes=np.array([sram_bytes], dtype=np.int64),
        )

    def finish(self) -> PackedProgram:
        def col(name: str, dtype) -> np.ndarray:
            chunks = self._chunks[name]
            if not chunks:
                return np.empty(0, dtype=dtype)
            return np.concatenate(
                [np.asarray(c, dtype=dtype).ravel() for c in chunks]
            )

        return PackedProgram(
            model_name=self.model_name,
            opcodes=col("opcodes", np.uint8),
            op_ids=col("op_ids", np.int32),
            num_bytes=col("num_bytes", np.int64),
            gemm_m=col("gemm_m", np.int64),
            gemm_n=col("gemm_n", np.int64),
            gemm_k=col("gemm_k", np.int64),
            macs=col("macs", np.int64),
            element_ops=col("element_ops", np.int64),
            fused=col("fused", bool),
            sram_bytes=col("sram_bytes", np.int64),
            op_names=tuple(self._name_index),
        )


def _tile_edges(total: int, tile: int, count: int) -> np.ndarray:
    """Per-index tile extents: ``tile`` everywhere, clipped on the last."""
    extents = np.full(count, tile, dtype=np.int64)
    extents[-1] = total - (count - 1) * tile
    return extents


def _lower_matrix_group(
    group: FusionGroup, config: DSAConfig, builder: _ColumnBuilder
) -> None:
    """Columnar mirror of ``codegen._emit_matrix_group``.

    Emission order per (n, k) weight tile: optional Sync (serial plans),
    weight load, then per m tile an optional activation load plus the
    systolic pass.  Activation loads happen on the first n stripe only
    when the whole activation is scratchpad-resident.
    """
    op = group.matrix_op
    assert op is not None
    m, n, k = _gemm_dims(op)
    dtype_bytes = op.input.dtype.num_bytes
    plan = plan_gemm(m, n, k, dtype_bytes, config)
    nt, kt, mt = plan.n_tiles, plan.k_tiles, plan.m_tiles
    tn = _tile_edges(n, plan.tile_n, nt)
    tk = _tile_edges(k, plan.tile_k, kt)
    tm = _tile_edges(m, plan.tile_m, mt)
    oid = builder.op_id(op.name)
    sync_rows = 0 if plan.double_buffered else 1

    def emit_blocks(n_indices: np.ndarray, with_acts: bool) -> None:
        if n_indices.size == 0:
            return
        # Template over one weight-tile block, length L.
        length = sync_rows + 1 + (2 if with_acts else 1) * mt
        opcode_t = np.empty(length, dtype=np.uint8)
        midx_t = np.zeros(length, dtype=np.int64)
        opcode_t[:sync_rows] = OP_SYNC
        opcode_t[sync_rows] = OP_LOAD
        body = sync_rows + 1
        if with_acts:
            opcode_t[body::2] = OP_LOAD
            opcode_t[body + 1 :: 2] = OP_GEMM
            midx_t[body::2] = np.arange(mt)
            midx_t[body + 1 :: 2] = np.arange(mt)
        else:
            opcode_t[body:] = OP_GEMM
            midx_t[body:] = np.arange(mt)
        is_wload_t = np.zeros(length, dtype=bool)
        is_wload_t[sync_rows] = True
        is_aload_t = (opcode_t == OP_LOAD) & ~is_wload_t
        is_gemm_t = opcode_t == OP_GEMM
        op_ids_t = np.where(opcode_t == OP_SYNC, -1, oid).astype(np.int32)
        tm_t = tm[midx_t]  # per-position m extent (0-index rows unused)

        # Blocks in (n-major, k-minor) order.
        blocks_n = np.repeat(n_indices, kt)
        blocks_k = np.tile(np.arange(kt), n_indices.size)
        tn_b = tn[blocks_n][:, None]
        tk_b = tk[blocks_k][:, None]
        count = blocks_n.size

        gm_t = np.where(is_gemm_t, tm_t, 0)
        shape = (count, length)
        gemm_m = np.broadcast_to(gm_t, shape)
        gemm_n = is_gemm_t[None, :] * tn_b
        gemm_k = is_gemm_t[None, :] * tk_b
        macs = gm_t[None, :] * gemm_n * gemm_k
        num_bytes = (
            is_wload_t[None, :] * (tk_b * tn_b * dtype_bytes)
            + is_aload_t[None, :] * (tm_t[None, :] * tk_b * dtype_bytes)
        )
        sram = num_bytes + gemm_m * gemm_k + gemm_k * gemm_n + 4 * gemm_m * gemm_n
        builder.append(
            opcodes=np.broadcast_to(opcode_t, shape),
            op_ids=np.broadcast_to(op_ids_t, shape),
            num_bytes=num_bytes,
            gemm_m=gemm_m,
            gemm_n=gemm_n,
            gemm_k=gemm_k,
            macs=macs,
            element_ops=np.zeros(shape, dtype=np.int64),
            fused=np.zeros(shape, dtype=bool),
            sram_bytes=sram,
        )

    if plan.activations_resident:
        emit_blocks(np.array([0]), with_acts=True)
        emit_blocks(np.arange(1, nt), with_acts=False)
    else:
        emit_blocks(np.arange(nt), with_acts=True)

    for vec_op in group.vector_ops:
        elements = vec_op.vector_elements()
        builder.append_row(
            OP_VOP,
            builder.op_id(vec_op.name),
            element_ops=elements * _vector_cost(vec_op),
            fused=True,
            sram_bytes=elements * 2,
        )

    store_bytes = group.output.size_bytes
    builder.append_row(
        OP_STORE, builder.op_id(group.name), num_bytes=store_bytes,
        sram_bytes=store_bytes,
    )


def _lower_vector_group(group: FusionGroup, builder: _ColumnBuilder) -> None:
    """Columnar mirror of ``codegen._emit_vector_group``."""
    first = group.vector_ops[0]
    load_bytes = first.input.size_bytes
    builder.append_row(
        OP_LOAD, builder.op_id(first.name), num_bytes=load_bytes,
        sram_bytes=load_bytes,
    )
    for index, vec_op in enumerate(group.vector_ops):
        if isinstance(vec_op, Embedding):
            gathered = vec_op.infer_output().size_bytes
            builder.append_row(
                OP_LOAD, builder.op_id(vec_op.name), num_bytes=gathered,
                sram_bytes=gathered,
            )
        elements = vec_op.vector_elements()
        builder.append_row(
            OP_VOP,
            builder.op_id(vec_op.name),
            element_ops=elements * _vector_cost(vec_op),
            fused=index > 0,
            sram_bytes=elements * 2,
        )
    store_bytes = group.output.size_bytes
    builder.append_row(
        OP_STORE, builder.op_id(group.name), num_bytes=store_bytes,
        sram_bytes=store_bytes,
    )


def lower_packed(graph: Graph, config: DSAConfig) -> PackedProgram:
    """Lower ``graph`` straight to a :class:`PackedProgram` for ``config``.

    Column-for-column identical to ``pack_program(generate(graph,
    config))`` — without constructing per-instruction Python objects, so
    compile cost stays flat as tile counts explode at small array dims.
    """
    builder = _ColumnBuilder(graph.name)
    for group in fuse(graph):
        if group.is_vector_only:
            _lower_vector_group(group, builder)
        else:
            _lower_matrix_group(group, config, builder)
    return builder.finish()
