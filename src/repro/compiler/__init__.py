"""Compiler from model graphs to DSA executables (paper §5.1).

Pipeline: graph-level optimisation (operator fusion to keep intermediates
in the shared output buffer), design-point-specific tiling/padding to
overlap DMA with compute, and code generation to the tile-grained ISA.

Typical use::

    from repro.accelerator import DSAConfig
    from repro.compiler import compile_graph
    from repro.models.zoo import resnet50

    executable = compile_graph(resnet50(), DSAConfig())
    report = executable.simulate()
"""

from repro.compiler.executable import (
    DSAExecutable,
    ProgramCache,
    compile_graph,
    compile_graph_uncached,
    shared_program_cache,
    tiling_key,
)
from repro.compiler.frontend import FusionGroup, fuse
from repro.compiler.packed_codegen import lower_packed
from repro.compiler.tiling import TilePlan, plan_gemm

__all__ = [
    "DSAExecutable",
    "FusionGroup",
    "ProgramCache",
    "TilePlan",
    "compile_graph",
    "compile_graph_uncached",
    "fuse",
    "lower_packed",
    "plan_gemm",
    "shared_program_cache",
    "tiling_key",
]
