"""Graph-level compiler front end: operator fusion.

The paper's front end "performs a range of optimizations, including
operator fusion to minimize off-chip data movement".  Here a fusion group
is one matrix op (GeMM/Conv) plus the chain of vector ops that immediately
follows it — those execute on the VPU straight out of the shared output
buffer, so their intermediates never travel to DRAM.  Vector ops with no
preceding matrix op (pre-processing graphs) form VPU-only groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CompilationError
from repro.models.graph import Graph
from repro.models.ops import Conv2D, GeMM, Op

# A vector op whose output is this many times larger than the matrix op's
# output cannot stay in the output buffer and breaks the fusion chain.
_MAX_FUSED_EXPANSION = 4.0


@dataclass
class FusionGroup:
    """One schedulable unit: an optional matrix op plus fused vector ops."""

    matrix_op: Optional[Op] = None
    vector_ops: List[Op] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.matrix_op is None and not self.vector_ops:
            raise CompilationError("empty fusion group")
        if self.matrix_op is not None and not isinstance(self.matrix_op, (GeMM, Conv2D)):
            raise CompilationError(
                f"matrix_op must be GeMM/Conv2D, got {type(self.matrix_op).__name__}"
            )

    @property
    def name(self) -> str:
        if self.matrix_op is not None:
            return self.matrix_op.name
        return self.vector_ops[0].name

    @property
    def input(self):
        first = self.matrix_op if self.matrix_op is not None else self.vector_ops[0]
        return first.input

    @property
    def output(self):
        last = self.vector_ops[-1] if self.vector_ops else self.matrix_op
        return last.infer_output()

    @property
    def is_vector_only(self) -> bool:
        return self.matrix_op is None


def _fusable_after_matrix(matrix_out_elements: int, op: Op) -> bool:
    """Can ``op`` stay fused to the matrix op producing ``matrix_out_elements``?"""
    if op.is_matrix_op:
        return False
    out_elements = op.infer_output().elements
    return out_elements <= matrix_out_elements * _MAX_FUSED_EXPANSION


def fuse(graph: Graph) -> List[FusionGroup]:
    """Partition ``graph`` into fusion groups in execution order."""
    groups: List[FusionGroup] = []
    pending_vector: List[Op] = []
    current: Optional[FusionGroup] = None

    for op in graph:
        if op.is_matrix_op:
            if current is not None:
                groups.append(current)
            elif pending_vector:
                groups.append(FusionGroup(matrix_op=None, vector_ops=pending_vector))
                pending_vector = []
            current = FusionGroup(matrix_op=op)
        elif current is not None:
            anchor_elements = current.matrix_op.infer_output().elements
            if _fusable_after_matrix(anchor_elements, op):
                current.vector_ops.append(op)
            else:
                groups.append(current)
                current = None
                pending_vector = [op]
        else:
            pending_vector.append(op)

    if current is not None:
        groups.append(current)
    if pending_vector:
        groups.append(FusionGroup(matrix_op=None, vector_ops=pending_vector))

    if not groups:
        raise CompilationError(f"graph {graph.name!r} produced no fusion groups")
    return groups
