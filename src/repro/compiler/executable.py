"""Executable packaging: compiled program + design point + metadata.

Mirrors the paper's deployment flow: the compiler produces configuration-
specific executable code that is "packaged along with the serverless
function in the container".  A :class:`DSAExecutable` is that package; its
:meth:`simulate` runs the cycle simulator, memoised because serverless
platforms execute the same function image many times.

Two sweep-scale optimisations live here:

- executables carry a columnar :class:`~repro.accelerator.packed
  .PackedProgram` and simulate through the vectorized engine by default
  (``engine="scalar"`` forces the reference interpreter, which is kept as
  the oracle and is bit-identical);
- a process-wide :class:`ProgramCache` keyed by ``(graph fingerprint,
  tiling-relevant config fields)`` lets design points that share tiling —
  e.g. the three memory technologies at one array/buffer geometry — reuse
  both compilation and packing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import Program
from repro.accelerator.packed import PackedProgram, pack_program
from repro.accelerator.simulator import CycleSimulator, ExecutionReport
from repro.compiler.codegen import generate
from repro.compiler.packed_codegen import lower_packed
from repro.errors import ConfigurationError
from repro.models.graph import Graph


def tiling_key(config: DSAConfig) -> Tuple[int, int, int]:
    """The config fields the compiler's output actually depends on.

    Tiling and code emission read only the array geometry and scratchpad
    capacity; memory technology, clock, and tech node affect timing and
    energy but not the instruction stream.
    """
    return (config.pe_rows, config.pe_cols, config.buffer_bytes)


class ProgramCache:
    """LRU cache of compiled/packed programs across a sweep.

    Keyed by ``(graph.fingerprint(), tiling_key(config))`` so every config
    sharing a tiling reuses one compilation + packing.  Entries are
    ``[Program | None, PackedProgram]``: :meth:`get_packed` fills only the
    columnar form (via the direct numpy lowering, which skips Python
    instruction objects entirely); :meth:`get` upgrades an entry with the
    full :class:`Program` on demand.  Bounded by entry count *and* total
    packed rows so million-instruction small-dim programs cannot grow
    memory without limit.
    """

    def __init__(self, maxsize: int = 256, max_rows: int = 16_000_000) -> None:
        if maxsize <= 0:
            raise ConfigurationError(f"non-positive cache size: {maxsize}")
        if max_rows <= 0:
            raise ConfigurationError(f"non-positive row budget: {max_rows}")
        self._maxsize = maxsize
        self._max_rows = max_rows
        self._entries: "OrderedDict[tuple, list]" = OrderedDict()
        self._rows = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._rows = 0
            self.hits = 0
            self.misses = 0

    @staticmethod
    def _entry_rows(entry: list) -> int:
        """Budget weight: Program objects cost far more per instruction
        than packed columns, so full entries count double."""
        return len(entry[1]) * (2 if entry[0] is not None else 1)

    def _store(self, key: tuple, entry: list) -> None:
        """Insert/refresh ``entry`` and evict LRU past either bound."""
        previous = self._entries.get(key)
        if previous is not None:
            self._rows -= self._entry_rows(previous)
        self._rows += self._entry_rows(entry)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > 1 and (
            len(self._entries) > self._maxsize or self._rows > self._max_rows
        ):
            _, evicted = self._entries.popitem(last=False)
            self._rows -= self._entry_rows(evicted)

    def get_packed(self, graph: Graph, config: DSAConfig) -> PackedProgram:
        """Return just the columnar program (fast path, numpy lowering)."""
        key = (graph.fingerprint(), tiling_key(config))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
        packed = lower_packed(graph, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # A concurrent get() filled this key while we lowered;
                # keep its (possibly Program-carrying) entry.
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            self.misses += 1
            self._store(key, [None, packed])
        return packed

    def get(
        self, graph: Graph, config: DSAConfig
    ) -> Tuple[Program, PackedProgram]:
        """Return the compiled + packed program, compiling on a miss."""
        key = (graph.fingerprint(), tiling_key(config))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[0], entry[1]
        program = generate(graph, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # Packed-only entry: upgrade it.  The numpy lowering and
                # pack_program(generate(...)) are column-identical (tested),
                # so the existing packed form is reused as-is.  A fresh
                # list keeps _store's row accounting exact.
                self.hits += 1
                upgraded = [program, entry[1]]
                self._store(key, upgraded)
                return program, upgraded[1]
            self.misses += 1
            packed = pack_program(program)
            self._store(key, [program, packed])
        return program, packed


_SHARED_CACHE = ProgramCache()


def shared_program_cache() -> ProgramCache:
    """The process-wide compiled-program cache."""
    return _SHARED_CACHE


@dataclass
class DSAExecutable:
    """A model graph compiled for a specific DSA design point."""

    graph: Graph
    config: DSAConfig
    program: Program
    packed: Optional[PackedProgram] = field(default=None, repr=False)
    _report: Optional[ExecutionReport] = field(default=None, repr=False)

    @property
    def model_name(self) -> str:
        return self.graph.name

    @property
    def weight_bytes(self) -> int:
        """Parameter footprint shipped in the function container image."""
        return self.graph.stats().weight_bytes

    def packed_program(self) -> PackedProgram:
        """The columnar form of :attr:`program`, packed once on demand."""
        if self.packed is None:
            self.packed = pack_program(self.program)
        return self.packed

    def simulate(
        self, force: bool = False, engine: str = "packed"
    ) -> ExecutionReport:
        """Run (or reuse) the cycle simulation of this executable.

        ``engine`` selects the vectorized ``"packed"`` path (default) or
        the ``"scalar"`` reference interpreter; both produce bit-identical
        reports, so the memoised report is shared.
        """
        if engine not in ("packed", "scalar"):
            raise ConfigurationError(f"unknown simulation engine {engine!r}")
        if self._report is None or force:
            simulator = CycleSimulator(self.config)
            if engine == "packed":
                self._report = simulator.run_packed(self.packed_program())
            else:
                self._report = simulator.run(self.program)
        return self._report

    @property
    def latency_s(self) -> float:
        """Device compute latency (cycle-simulated)."""
        return self.simulate().latency_s

    @property
    def energy_j(self) -> float:
        """Device energy for one execution (cycle-simulated)."""
        return self.simulate().energy_j


def compile_graph(
    graph: Graph,
    config: DSAConfig,
    verify: bool = False,
    cache: Optional[ProgramCache] = None,
) -> DSAExecutable:
    """Compile ``graph`` for ``config`` and return the executable package.

    Compilation goes through ``cache`` (the process-wide shared cache by
    default), so repeated compiles of one graph across configs that share
    tiling are free.  Use :func:`compile_graph_uncached` when measuring
    cold-compile cost.

    With ``verify=True`` the (possibly cached) program is checked by the
    independent verifier (:mod:`repro.compiler.verify`) before packaging.
    """
    if cache is None:  # explicit: an empty ProgramCache is falsy via __len__
        cache = _SHARED_CACHE
    program, packed = cache.get(graph, config)
    if verify:
        from repro.compiler.verify import verify_program

        verify_program(graph, program, config).require_ok()
    return DSAExecutable(graph=graph, config=config, program=program, packed=packed)


def compile_graph_uncached(
    graph: Graph, config: DSAConfig, verify: bool = False
) -> DSAExecutable:
    """Cold compile, bypassing the program cache (benchmarks, oracle runs)."""
    program = generate(graph, config)
    if verify:
        from repro.compiler.verify import verify_program

        verify_program(graph, program, config).require_ok()
    return DSAExecutable(graph=graph, config=config, program=program)
