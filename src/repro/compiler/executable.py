"""Executable packaging: compiled program + design point + metadata.

Mirrors the paper's deployment flow: the compiler produces configuration-
specific executable code that is "packaged along with the serverless
function in the container".  A :class:`DSAExecutable` is that package; its
:meth:`simulate` runs the cycle simulator, memoised because serverless
platforms execute the same function image many times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import Program
from repro.accelerator.simulator import CycleSimulator, ExecutionReport
from repro.compiler.codegen import generate
from repro.models.graph import Graph


@dataclass
class DSAExecutable:
    """A model graph compiled for a specific DSA design point."""

    graph: Graph
    config: DSAConfig
    program: Program
    _report: Optional[ExecutionReport] = field(default=None, repr=False)

    @property
    def model_name(self) -> str:
        return self.graph.name

    @property
    def weight_bytes(self) -> int:
        """Parameter footprint shipped in the function container image."""
        return self.graph.stats().weight_bytes

    def simulate(self, force: bool = False) -> ExecutionReport:
        """Run (or reuse) the cycle simulation of this executable."""
        if self._report is None or force:
            simulator = CycleSimulator(self.config)
            self._report = simulator.run(self.program)
        return self._report

    @property
    def latency_s(self) -> float:
        """Device compute latency (cycle-simulated)."""
        return self.simulate().latency_s

    @property
    def energy_j(self) -> float:
        """Device energy for one execution (cycle-simulated)."""
        return self.simulate().energy_j


def compile_graph(
    graph: Graph, config: DSAConfig, verify: bool = False
) -> DSAExecutable:
    """Compile ``graph`` for ``config`` and return the executable package.

    With ``verify=True`` the generated program is checked by the
    independent verifier (:mod:`repro.compiler.verify`) before packaging.
    """
    program = generate(graph, config)
    if verify:
        from repro.compiler.verify import verify_program

        verify_program(graph, program, config).require_ok()
    return DSAExecutable(graph=graph, config=config, program=program)
