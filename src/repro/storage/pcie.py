"""PCIe link model: latency, bandwidth, and per-bit energy.

Both the host I/O path and the DSCS-Drive's internal peer-to-peer path are
PCIe; the P2P path avoids the host software stack but pays the same wire
costs.  Per-bit transfer energy follows the figure the paper takes from
prior SoC work [123].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB_DEC, US


@dataclass(frozen=True)
class PCIeLink:
    """A point-to-point PCIe connection."""

    name: str = "pcie_gen3_x4"
    bandwidth_bytes_per_s: float = 3.2 * GB_DEC  # effective gen3 x4
    setup_seconds: float = 5 * US  # doorbell + DMA descriptor setup
    energy_pj_per_bit: float = 4.4  # per-bit PCIe energy [123]

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(f"{self.name}: non-positive bandwidth")
        if self.setup_seconds < 0:
            raise ConfigurationError(f"{self.name}: negative setup latency")
        if self.energy_pj_per_bit < 0:
            raise ConfigurationError(f"{self.name}: negative energy")

    def transfer_seconds(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` across the link."""
        if num_bytes < 0:
            raise ConfigurationError(f"negative transfer size: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.setup_seconds + num_bytes / self.bandwidth_bytes_per_s

    def transfer_energy_j(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` across the link."""
        if num_bytes < 0:
            raise ConfigurationError(f"negative transfer size: {num_bytes}")
        return num_bytes * 8 * self.energy_pj_per_bit * 1e-12
