"""S3-like replicated object store (paper §5.2).

Objects are chunked (1–64 MB chunks, following GFS-style fixed-size
chunking [108]), replicated across storage nodes, and classified into
storage classes.  Serverless requests are small (<= 20 MB in AWS S3
[109]), so a request's data is assumed to live on a single drive; the
store flags the exceptional multi-drive case so the runtime can fall back
to CPU execution or fan out across CSDs (paper §5.2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StorageError
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.node import StorageNode
from repro.storage.placement import PlacementPolicy
from repro.units import MB


class StorageClass(enum.Enum):
    """Data-temperature classes offered by cloud providers [107]."""

    HOT = "hot"
    COLD = "cold"
    ARCHIVE = "archive"
    DSCS = "dscs"  # the new class: replica adjacent to a DSA


@dataclass
class Replica:
    """One replica of an object: which node/drive holds it."""

    node: StorageNode
    drive: SSDDrive

    @property
    def accelerated(self) -> bool:
        return self.drive.supports_acceleration


@dataclass
class ObjectMeta:
    """Metadata record for a stored object."""

    key: str
    size_bytes: int
    storage_class: StorageClass
    replicas: List[Replica] = field(default_factory=list)
    chunk_bytes: int = 16 * MB

    @property
    def num_chunks(self) -> int:
        return max(1, math.ceil(self.size_bytes / self.chunk_bytes))

    @property
    def single_drive(self) -> bool:
        """True when the object fits one chunk (the common serverless case)."""
        return self.num_chunks == 1

    def accelerated_replica(self) -> Optional[Replica]:
        """A replica co-located with a DSA, if any."""
        for replica in self.replicas:
            if replica.accelerated:
                return replica
        return None


class ObjectStore:
    """A disaggregated key-value object store over storage nodes."""

    def __init__(
        self,
        nodes: Sequence[StorageNode],
        placement: Optional[PlacementPolicy] = None,
        chunk_bytes: int = 16 * MB,
    ) -> None:
        if not nodes:
            raise StorageError("object store needs at least one node")
        if not MB <= chunk_bytes <= 64 * MB:
            raise StorageError(
                f"chunk size must be within 1-64 MB, got {chunk_bytes} bytes"
            )
        self._nodes = list(nodes)
        self._placement = placement or PlacementPolicy()
        self._chunk_bytes = chunk_bytes
        self._objects: Dict[str, ObjectMeta] = {}
        self._put_counter = 0

    @property
    def nodes(self) -> List[StorageNode]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def put(
        self,
        key: str,
        size_bytes: int,
        acceleratable: bool = False,
        storage_class: Optional[StorageClass] = None,
    ) -> ObjectMeta:
        """Store (metadata for) an object, replicating across nodes."""
        if size_bytes <= 0:
            raise StorageError(f"object {key!r} has non-positive size {size_bytes}")
        if key in self._objects:
            self.delete(key)

        if storage_class is None:
            storage_class = StorageClass.DSCS if acceleratable else StorageClass.HOT
        replica_nodes = self._placement.place(
            self._nodes, size_bytes, acceleratable, spread_hint=self._put_counter
        )
        self._put_counter += 1

        replicas: List[Replica] = []
        for index, node in enumerate(replica_nodes):
            prefer_dsa = acceleratable and index == 0
            drive = node.pick_drive(size_bytes, prefer_accelerated=prefer_dsa)
            drive.allocate(size_bytes)
            replicas.append(Replica(node=node, drive=drive))

        meta = ObjectMeta(
            key=key,
            size_bytes=size_bytes,
            storage_class=storage_class,
            replicas=replicas,
            chunk_bytes=self._chunk_bytes,
        )
        self._objects[key] = meta
        return meta

    def get_meta(self, key: str) -> ObjectMeta:
        """Look up an object's metadata."""
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(f"object {key!r} not found") from None

    def delete(self, key: str) -> None:
        """Remove an object and release its replicas."""
        meta = self.get_meta(key)
        for replica in meta.replicas:
            replica.drive.release(meta.size_bytes)
        del self._objects[key]

    # --- data-path latency helpers --------------------------------------
    def remote_read_seconds(self, key: str, rng: np.random.Generator) -> float:
        """Traditional path: read the object from a replica over the network."""
        meta = self.get_meta(key)
        replica = meta.replicas[0]
        return replica.node.remote_read_seconds(replica.drive, meta.size_bytes, rng)

    def remote_write_seconds(
        self, key: str, size_bytes: int, rng: np.random.Generator
    ) -> float:
        """Traditional path: write an output object over the network."""
        if key in self._objects:
            meta = self._objects[key]
            replica = meta.replicas[0]
        else:
            meta = self.put(key, size_bytes)
            replica = meta.replicas[0]
        return replica.node.remote_write_seconds(replica.drive, size_bytes, rng)

    def p2p_read_seconds(self, key: str) -> Tuple[float, DSCSDrive]:
        """DSCS path: flash -> staging DRAM on the replica's own drive."""
        meta = self.get_meta(key)
        replica = meta.accelerated_replica()
        if replica is None:
            raise StorageError(
                f"object {key!r} has no replica on a DSCS-Drive"
            )
        if not meta.single_drive:
            raise StorageError(
                f"object {key!r} spans {meta.num_chunks} chunks; "
                "fall back to CPU or fan out across CSDs (paper §5.2)"
            )
        drive = replica.drive
        assert isinstance(drive, DSCSDrive)
        return drive.p2p_read_seconds(meta.size_bytes), drive
