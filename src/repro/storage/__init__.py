"""Disaggregated storage substrate (paper §3, §5.2).

Models the storage side of the system end to end:

- :class:`~repro.storage.pcie.PCIeLink` — host/device and peer-to-peer
  PCIe transfers with per-bit energy.
- :class:`~repro.storage.flash.FlashArray` — NAND read/program latency
  and channel-limited streaming bandwidth.
- :class:`~repro.storage.drive.SSDDrive` /
  :class:`~repro.storage.drive.DSCSDrive` — a conventional drive and the
  paper's Domain-Specific Computational Storage Drive, which adds a DSA
  plus DRAM staging buffer and a dedicated P2P path.
- :class:`~repro.storage.object_store.ObjectStore` — an S3-like replicated
  key-value store with chunking, storage classes, and DSCS-aware replica
  placement.
- :class:`~repro.storage.node.StorageNode` — a storage server holding
  drives and serving remote RPC reads/writes.
"""

from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.flash import FlashArray
from repro.storage.node import StorageNode
from repro.storage.object_store import ObjectMeta, ObjectStore, StorageClass
from repro.storage.pcie import PCIeLink
from repro.storage.placement import PlacementPolicy

__all__ = [
    "DSCSDrive",
    "FlashArray",
    "ObjectMeta",
    "ObjectStore",
    "PCIeLink",
    "PlacementPolicy",
    "SSDDrive",
    "StorageClass",
    "StorageNode",
]
