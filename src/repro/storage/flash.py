"""NAND flash array timing model.

A multi-channel flash array behind an SSD controller: fixed page-access
latency plus channel-striped streaming bandwidth.  Write (program) latency
is higher than read, as on real NAND.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB_DEC, US


@dataclass(frozen=True)
class FlashArray:
    """The flash side of a storage drive."""

    channels: int = 8
    read_access_seconds: float = 70 * US  # page read + ECC + FTL lookup
    program_access_seconds: float = 200 * US  # page program
    channel_bandwidth_bytes_per_s: float = 0.5 * GB_DEC

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ConfigurationError(f"non-positive channel count: {self.channels}")
        if self.read_access_seconds < 0 or self.program_access_seconds < 0:
            raise ConfigurationError("negative flash access latency")
        if self.channel_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("non-positive flash channel bandwidth")

    @property
    def stream_bandwidth_bytes_per_s(self) -> float:
        """Aggregate sequential bandwidth across channels."""
        return self.channels * self.channel_bandwidth_bytes_per_s

    def read_seconds(self, num_bytes: int) -> float:
        """Latency to read ``num_bytes`` sequentially."""
        if num_bytes < 0:
            raise ConfigurationError(f"negative read size: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.read_access_seconds + num_bytes / self.stream_bandwidth_bytes_per_s

    def write_seconds(self, num_bytes: int) -> float:
        """Latency to program ``num_bytes`` sequentially."""
        if num_bytes < 0:
            raise ConfigurationError(f"negative write size: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return (
            self.program_access_seconds
            + num_bytes / self.stream_bandwidth_bytes_per_s
        )
