"""Replica placement policy (paper §5.2, "Data placement").

The object store replicates every object across distinct nodes.  For
objects tagged as belonging to an acceleratable function, one replica is
mapped to a node with a DSCS-Drive — a new storage class — so the
accelerator sits next to the data it will process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import StorageError
from repro.storage.node import StorageNode


@dataclass(frozen=True)
class PlacementPolicy:
    """Chooses replica nodes for a new object."""

    replication_factor: int = 3

    def __post_init__(self) -> None:
        if self.replication_factor <= 0:
            raise StorageError(
                f"replication factor must be positive: {self.replication_factor}"
            )

    def place(
        self,
        nodes: Sequence[StorageNode],
        num_bytes: int,
        acceleratable: bool,
        spread_hint: int = 0,
    ) -> List[StorageNode]:
        """Return the replica nodes for an object of ``num_bytes``.

        ``spread_hint`` rotates the starting node so successive objects
        spread across the rack.  When ``acceleratable``, the first replica
        is forced onto a DSCS-capable node if one exists.
        """
        if not nodes:
            raise StorageError("no storage nodes available")
        count = min(self.replication_factor, len(nodes))
        chosen: List[StorageNode] = []

        if acceleratable:
            capable = [n for n in nodes if n.supports_acceleration]
            if capable:
                chosen.append(capable[spread_hint % len(capable)])

        start = spread_hint % len(nodes)
        for offset in range(len(nodes)):
            if len(chosen) >= count:
                break
            node = nodes[(start + offset) % len(nodes)]
            if node not in chosen:
                chosen.append(node)

        if len(chosen) < count:
            raise StorageError(
                f"could not place {count} replicas across {len(nodes)} nodes"
            )
        return chosen
