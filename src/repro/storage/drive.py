"""Storage drives: a conventional SSD and the DSCS-Drive (paper Fig. 5b).

The DSCS-Drive houses a DSA next to the flash array with a small DRAM
staging buffer; a dedicated PCIe peer-to-peer connection lets the DSA pull
data from flash *without* crossing the host software stack — a single
system call initiates the whole transfer (paper §3.1, step 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.accelerator.config import DSAConfig, SMARTSSD_POWER_BUDGET_WATTS
from repro.errors import ConfigurationError, StorageError
from repro.storage.flash import FlashArray
from repro.storage.pcie import PCIeLink
from repro.units import GB, US

_drive_ids = itertools.count()


@dataclass
class SSDDrive:
    """A conventional NVMe SSD."""

    capacity_bytes: int = 4 * 1024 * GB
    flash: FlashArray = field(default_factory=FlashArray)
    host_link: PCIeLink = field(default_factory=PCIeLink)
    # Fleet-unique identity, not configuration: kept out of the repr so
    # two identically configured drives compare/fingerprint identically
    # (repro.experiments.common.fabric_fingerprint keys caches on repr).
    drive_id: int = field(default_factory=lambda: next(_drive_ids), repr=False)
    idle_power_watts: float = 5.0
    active_power_watts: float = 12.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"non-positive capacity: {self.capacity_bytes}")
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    def allocate(self, num_bytes: int) -> None:
        """Reserve space for an object chunk."""
        if num_bytes < 0:
            raise StorageError(f"negative allocation: {num_bytes}")
        if num_bytes > self.free_bytes:
            raise StorageError(
                f"drive {self.drive_id} full: need {num_bytes}, "
                f"free {self.free_bytes}"
            )
        self._used_bytes += num_bytes

    def release(self, num_bytes: int) -> None:
        """Free previously allocated space."""
        if num_bytes < 0 or num_bytes > self._used_bytes:
            raise StorageError(
                f"invalid release of {num_bytes} (used {self._used_bytes})"
            )
        self._used_bytes -= num_bytes

    def host_read_seconds(self, num_bytes: int) -> float:
        """Flash read + transfer to the host over PCIe."""
        return self.flash.read_seconds(num_bytes) + self.host_link.transfer_seconds(
            num_bytes
        )

    def host_write_seconds(self, num_bytes: int) -> float:
        """Transfer from host + flash program."""
        return self.host_link.transfer_seconds(num_bytes) + self.flash.write_seconds(
            num_bytes
        )

    @property
    def supports_acceleration(self) -> bool:
        return False


@dataclass
class DSCSDrive(SSDDrive):
    """Domain-Specific Computational Storage Drive.

    Extends the SSD with an embedded DSA, a DRAM staging buffer, and a
    dedicated flash<->DSA peer-to-peer PCIe path.  The accelerator is an
    optional extra capability: the drive still serves all conventional
    storage operations (paper §5.2, "Storage utilization").
    """

    dsa_config: Optional[DSAConfig] = None
    p2p_link: PCIeLink = field(
        default_factory=lambda: PCIeLink(name="pcie_p2p", setup_seconds=3 * US)
    )
    staging_dram_bytes: int = 4 * GB
    power_budget_watts: float = SMARTSSD_POWER_BUDGET_WATTS

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.dsa_config is None:
            from repro.accelerator.config import paper_design_point

            self.dsa_config = paper_design_point()
        if self.staging_dram_bytes <= 0:
            raise ConfigurationError(
                f"non-positive staging DRAM: {self.staging_dram_bytes}"
            )
        self._busy = False

    @property
    def supports_acceleration(self) -> bool:
        return True

    @property
    def busy(self) -> bool:
        """True while a function runs on the DSA (run-to-completion)."""
        return self._busy

    def mark_busy(self) -> None:
        if self._busy:
            raise StorageError(f"drive {self.drive_id} DSA already busy")
        self._busy = True

    def mark_idle(self) -> None:
        self._busy = False

    def p2p_read_seconds(self, num_bytes: int) -> float:
        """Flash -> staging DRAM over the dedicated P2P path.

        Bypasses the host software stack entirely; a single syscall from
        the host initiates the DMA (charged by the driver model, not here).
        """
        if num_bytes < 0:
            raise StorageError(f"negative P2P read: {num_bytes}")
        if num_bytes > self.staging_dram_bytes:
            raise StorageError(
                f"P2P read of {num_bytes} exceeds staging DRAM "
                f"{self.staging_dram_bytes}"
            )
        return self.flash.read_seconds(num_bytes) + self.p2p_link.transfer_seconds(
            num_bytes
        )

    def p2p_write_seconds(self, num_bytes: int) -> float:
        """Staging DRAM -> flash over the dedicated P2P path."""
        if num_bytes < 0:
            raise StorageError(f"negative P2P write: {num_bytes}")
        return self.p2p_link.transfer_seconds(num_bytes) + self.flash.write_seconds(
            num_bytes
        )

    def p2p_energy_j(self, num_bytes: int) -> float:
        """PCIe energy of a P2P transfer."""
        return self.p2p_link.transfer_energy_j(num_bytes)
