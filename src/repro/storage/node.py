"""A storage server: drives behind an RPC front end.

Serves remote reads/writes for traditional serverless functions (paper
§2.1) and exposes whether it can accelerate functions in-storage.  The
node's CPU is *not* consumed by in-storage acceleration beyond initiating
the P2P transfer (paper §3) — this is what keeps DSCS from interfering
with co-located storage tenants.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import StorageError
from repro.network.rpc import RPCStack
from repro.storage.drive import DSCSDrive, SSDDrive

_node_ids = itertools.count()


@dataclass
class StorageNode:
    """One storage server in a disaggregated storage rack."""

    drives: List[SSDDrive] = field(default_factory=lambda: [SSDDrive()])
    rpc: RPCStack = field(default_factory=RPCStack)
    node_id: int = field(default_factory=lambda: next(_node_ids))
    cpu_idle_power_watts: float = 60.0
    cpu_active_power_watts: float = 180.0

    def __post_init__(self) -> None:
        if not self.drives:
            raise StorageError(f"storage node {self.node_id} has no drives")

    @property
    def accelerated_drives(self) -> List[DSCSDrive]:
        """Drives on this node that embed a DSA."""
        return [d for d in self.drives if isinstance(d, DSCSDrive)]

    @property
    def supports_acceleration(self) -> bool:
        return bool(self.accelerated_drives)

    def available_accelerated_drive(self) -> Optional[DSCSDrive]:
        """An idle DSCS-Drive, or None if all are busy/absent."""
        for drive in self.accelerated_drives:
            if not drive.busy:
                return drive
        return None

    def pick_drive(self, num_bytes: int, prefer_accelerated: bool) -> SSDDrive:
        """Choose a drive with room for ``num_bytes``.

        With ``prefer_accelerated``, DSCS-Drives are considered first so an
        acceleratable object's replica lands next to a DSA (paper §5.2,
        data placement).
        """
        candidates = list(self.drives)
        if prefer_accelerated:
            candidates.sort(key=lambda d: not d.supports_acceleration)
        for drive in candidates:
            if drive.free_bytes >= num_bytes:
                return drive
        raise StorageError(
            f"storage node {self.node_id} cannot fit {num_bytes} bytes"
        )

    # --- remote (traditional) data path ---------------------------------
    def remote_read_seconds(
        self, drive: SSDDrive, num_bytes: int, rng: np.random.Generator
    ) -> float:
        """Full remote read: RPC stack + device I/O (paper §2.1)."""
        return self.rpc.sample_request(num_bytes, rng) + drive.host_read_seconds(
            num_bytes
        )

    def remote_write_seconds(
        self, drive: SSDDrive, num_bytes: int, rng: np.random.Generator
    ) -> float:
        """Full remote write: RPC stack + device program."""
        return self.rpc.sample_request(num_bytes, rng) + drive.host_write_seconds(
            num_bytes
        )

    def median_remote_read_seconds(self, drive: SSDDrive, num_bytes: int) -> float:
        """Analytic median of :meth:`remote_read_seconds`."""
        return self.rpc.median_request(num_bytes) + drive.host_read_seconds(num_bytes)
