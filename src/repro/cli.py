"""Command-line interface: regenerate any experiment from the shell.

Usage::

    python -m repro.cli list
    python -m repro.cli fig09 --samples 10000
    python -m repro.cli fig12 --json results/fig12.json
    python -m repro.cli table1
    python -m repro.cli dse --full

Each command prints the figure's rows and optionally writes JSON/CSV.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import report


def _emit(rows, args) -> None:
    print(report.to_markdown(rows))
    if args.json:
        path = report.write_json(rows, args.json)
        print(f"wrote {path}")
    if args.csv:
        path = report.write_csv(rows, args.csv)
        print(f"wrote {path}")


def _cmd_table1(args) -> None:
    from repro.experiments.tables import table1_rows

    _emit(table1_rows(), args)


def _cmd_table2(args) -> None:
    from repro.experiments.tables import table2_rows

    _emit(table2_rows(), args)


def _cmd_fig03(args) -> None:
    from repro.experiments import fig03

    results = fig03.run(samples=args.samples)
    rows = [
        {
            "benchmark": r.benchmark,
            "median_ms": round(r.median * 1e3, 2),
            "p99_ms": round(r.p99 * 1e3, 2),
            "tail_ratio": round(r.tail_ratio, 2),
        }
        for r in results.values()
    ]
    _emit(rows, args)


def _cmd_fig04(args) -> None:
    from repro.experiments import fig04

    shares = fig04.run()
    rows = [
        {
            "benchmark": r.benchmark,
            "total_ms": round(r.total_seconds * 1e3, 1),
            "communication": round(r.communication, 3),
            "compute": round(r.compute, 3),
            "system_stack": round(r.system_stack, 3),
        }
        for r in shares.values()
    ]
    _emit(rows, args)


def _cmd_fig09(args) -> None:
    from repro.experiments import fig09

    study = fig09.run(count=args.samples)
    rows = report.speedup_rows(study.speedups)
    for row in rows:
        platform = str(row["platform"])
        row["geomean"] = round(study.geomean(platform), 3)
    _emit(rows, args)


def _cmd_fig11(args) -> None:
    from repro.experiments import fig11

    study = fig11.run()
    rows = report.speedup_rows(study.reductions)
    for row in rows:
        row["geomean"] = round(study.geomean(str(row["platform"])), 3)
    _emit(rows, args)


def _cmd_fig12(args) -> None:
    from repro.experiments import fig12

    study = fig12.run(count=args.samples)
    rows = [
        {
            "platform": platform,
            "throughput_rps": round(study.throughput_rps[platform], 3),
            "total_cost_usd": round(study.total_cost_usd[platform], 0),
            "normalized": round(study.normalized[platform], 3),
        }
        for platform in study.normalized
    ]
    _emit(rows, args)


def _cmd_fig14(args) -> None:
    from repro.experiments import fig14

    study = fig14.run(count=args.samples)
    rows = [
        {"batch": batch, "geomean_speedup": round(study.geomean(batch), 3)}
        for batch in study.batches
    ]
    _emit(rows, args)


def _cmd_fig17(args) -> None:
    from repro.experiments import fig17

    study = fig17.run(count=args.samples)
    rows = [
        {
            "benchmark": name,
            "warm": round(study.warm_speedups[name], 3),
            "cold": round(study.cold_speedups[name], 3),
        }
        for name in study.warm_speedups
    ]
    _emit(rows, args)


def _cmd_dse(args) -> None:
    from repro.experiments import fig07

    study = fig07.run(square_only=not args.full)
    rows = [
        {
            "config": r.label,
            "fps": round(r.throughput_fps, 2),
            "dynamic_power_w": round(r.dynamic_power_watts, 3),
            "area_mm2": round(r.area_mm2, 2),
            "feasible": r.feasible,
            "on_frontier": r.label in study.frontier_labels(),
        }
        for r in study.results
    ]
    print(f"best feasible point: {study.best_feasible.label}")
    _emit(rows, args)


_COMMANDS: Dict[str, Callable] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig03": _cmd_fig03,
    "fig04": _cmd_fig04,
    "fig09": _cmd_fig09,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "fig14": _cmd_fig14,
    "fig17": _cmd_fig17,
    "dse": _cmd_dse,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate DSCS-Serverless (ASPLOS'24) experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment commands")
    for name in _COMMANDS:
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--samples", type=int, default=2000,
                         help="Monte-Carlo samples (paper: 10000)")
        cmd.add_argument("--json", type=str, default=None,
                         help="write rows to this JSON file")
        cmd.add_argument("--csv", type=str, default=None,
                         help="write rows to this CSV file")
        if name == "dse":
            cmd.add_argument("--full", action="store_true",
                             help="sweep the full >650-point space")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in _COMMANDS:
            print(name)
        return 0
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
