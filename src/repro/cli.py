"""Command-line interface: regenerate any experiment from the shell.

Every subcommand is auto-generated from the experiment registry: each
registered :class:`~repro.experiments.registry.ExperimentSpec` becomes a
subcommand whose flags mirror its parameter schema, plus ``--fast`` /
``--paper`` fidelity-profile selectors and ``--json`` / ``--csv`` output
targets.  Usage::

    python -m repro.cli list
    python -m repro.cli run fig13 --fast
    python -m repro.cli run fig13-policy --fast
    python -m repro.cli fig09 --samples 10000 --json results/fig09.json
    python -m repro.cli fig15-rack --fast --csv results/fig15_rack.csv
    python -m repro.cli dse --full

``run <name>`` and the bare ``<name>`` subcommand are equivalent.  JSON
output is the registry's result document (rows + params + provenance);
CSV output is the flat row table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments import report
from repro.experiments.registry import REGISTRY, ExperimentSpec, Param, load_all


def _argparse_type(param: Param):
    """Adapt Param.parse to argparse's error protocol.

    argparse only turns ValueError/TypeError into usage errors;
    ConfigurationError (e.g. an empty sequence value) would escape as a
    raw traceback otherwise.
    """

    def parse(text: str):
        try:
            return param.parse(text)
        except ConfigurationError as error:
            raise argparse.ArgumentTypeError(str(error)) from error

    parse.__name__ = param.kind
    return parse


def _add_param_argument(command: argparse.ArgumentParser, param: Param) -> None:
    flag = "--" + param.name.replace("_", "-")
    if param.kind == "bool":
        command.add_argument(
            flag,
            action=argparse.BooleanOptionalAction,
            default=param.default,
            help=param.help or None,
        )
        return
    metavar = {
        "int": "N",
        "float": "X",
        "str": "S",
        "ints": "N,N,...",
        "floats": "X,X,...",
        "strs": "S,S,...",
    }[param.kind]
    command.add_argument(
        flag,
        type=_argparse_type(param),
        default=None,
        metavar=metavar,
        help=f"{param.help or param.name} (default: {param.default})",
    )


def _add_spec_parser(subparsers, spec: ExperimentSpec) -> None:
    command = subparsers.add_parser(spec.name, help=spec.description)
    command.set_defaults(experiment=spec.name)
    fidelity = command.add_mutually_exclusive_group()
    fidelity.add_argument(
        "--fast",
        action="store_const",
        const="fast",
        dest="profile",
        help="seconds-scale smoke fidelity profile",
    )
    fidelity.add_argument(
        "--paper",
        action="store_const",
        const="paper",
        dest="profile",
        help="publication-scale fidelity profile",
    )
    for param in spec.cli_params():
        _add_param_argument(command, param)
    command.add_argument(
        "--json", type=str, default=None, help="write the result document here"
    )
    command.add_argument(
        "--csv", type=str, default=None, help="write the row table here"
    )


def build_parser() -> argparse.ArgumentParser:
    load_all()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate DSCS-Serverless (ASPLOS'24) experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    list_parser = subparsers.add_parser(
        "list", help="list every registered experiment"
    )
    list_parser.add_argument(
        "--tag", type=str, default=None, help="only experiments with this tag"
    )
    run_parser = subparsers.add_parser(
        "run", help="run a registered experiment by name"
    )
    run_subparsers = run_parser.add_subparsers(dest="experiment", required=True)
    for spec in REGISTRY.specs():
        _add_spec_parser(subparsers, spec)
        _add_spec_parser(run_subparsers, spec)
    return parser


def _cli_overrides(spec: ExperimentSpec, args: argparse.Namespace) -> dict:
    """Explicitly passed flags only, so profiles fill the rest."""
    overrides = {}
    for param in spec.cli_params():
        value = getattr(args, param.name)
        if param.kind == "bool":
            # Booleans carry their real default (``dse --full`` must
            # parse to False when omitted); only a changed value counts
            # as an explicit override.
            if value != param.default:
                overrides[param.name] = value
        elif value is not None:
            overrides[param.name] = value
    return overrides


def _print_listing(tag: Optional[str]) -> None:
    specs = REGISTRY.by_tag(tag) if tag else REGISTRY.specs()
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.name:12s} [{tags}] {spec.description}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _print_listing(args.tag)
        return 0
    spec = REGISTRY.get(args.experiment)
    result = REGISTRY.run(
        spec.name, profile=args.profile, **_cli_overrides(spec, args)
    )
    if spec.headline is not None:
        note = spec.headline(result.study)
        if note:
            print(note)
    print(report.to_markdown(result.rows))
    if args.json:
        print(f"wrote {result.write_json(args.json)}")
    if args.csv:
        print(f"wrote {report.write_csv(result.rows, args.csv)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
